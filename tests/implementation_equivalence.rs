//! Integration test for experiment E6: the event-driven (SystemC-style) and
//! equation-style (AMS-style) implementations produce virtually identical
//! results, and the event-driven module behaves identically under timeless
//! DC sweeps and timed testbenches.

use ja_repro::hdl_models::comparison::implementation_equivalence;
use ja_repro::hdl_models::systemc::SystemCJaCore;
use ja_repro::waveform::schedule::FieldSchedule;

#[test]
fn systemc_and_ams_models_agree_within_one_percent() {
    let report = implementation_equivalence(10.0).expect("both implementations run");
    assert!(
        report.relative_diff < 0.01,
        "implementations diverge by {:.3}% of B_max",
        report.relative_diff * 100.0
    );
    assert!(report.samples > 10_000);
    // The event-driven implementation necessarily does more bookkeeping
    // (several process activations per field sample).
    assert!(report.systemc_activations as usize > report.samples);
}

#[test]
fn timed_and_untimed_execution_of_the_same_module_agree() {
    let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 1).expect("schedule");
    let samples = schedule.to_samples();

    let mut dc = SystemCJaCore::date2006().expect("module");
    let dc_curve = dc.run_schedule(&schedule).expect("dc sweep");

    let mut timed = SystemCJaCore::date2006().expect("module");
    let (timed_curve, _recorder) = timed.run_timed(&samples, 1e-6).expect("timed run");

    assert_eq!(dc_curve.len(), timed_curve.len());
    for (a, b) in dc_curve.points().iter().zip(timed_curve.points()) {
        assert!((a.b.as_tesla() - b.b.as_tesla()).abs() < 1e-12);
    }
}

#[test]
fn equivalence_holds_for_coarser_discretisation_too() {
    let report = implementation_equivalence(50.0).expect("both implementations run");
    assert!(
        report.relative_diff < 0.02,
        "implementations diverge by {:.3}% of B_max at 50 A/m steps",
        report.relative_diff * 100.0
    );
}
