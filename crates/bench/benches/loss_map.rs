//! Loss-map grids: scalar vs structure-of-arrays routing.
//!
//! Expands the workload behind `ja lossmap` — two thermally-resolved
//! materials swept over a 3 temperature x 3 frequency operating-point
//! axis, every entry carrying a core-loss breakdown — and runs the same
//! 18-scenario batch through the scalar route and the SoA lockstep route
//! on one worker.  Routing never changes report content (the f64 lanes
//! are bit-identical to scalar runs, asserted in
//! `tests/batch_determinism.rs`), so the only question is cost: the CI
//! bench gate holds the SoA route to at most 1.0x the scalar route.

use criterion::{black_box, Criterion};
use hdl_models::exec::{BatchRunner, SoaRouting};
use hdl_models::scenario::{
    BackendKind, BatchReport, Excitation, OperatingPoint, Scenario, ScenarioGrid,
};
use ja_hysteresis::config::JaConfig;
use magnetics::geometry::CoreGeometry;
use magnetics::material::JaParameters;
use magnetics::thermal::ThermalCoefficients;

const TEMPERATURES: [f64; 3] = [-40.0, 25.0, 125.0];
const FREQUENCIES: [f64; 3] = [50.0, 100.0, 200.0];

/// The loss-map grid: 2 materials x 1 backend x 1 config x 1 excitation
/// x 9 operating points = 18 scenarios, each lockstep group 2 lanes wide.
fn scenarios() -> Vec<Scenario> {
    let mut grid = ScenarioGrid::new()
        .material_with_thermal(
            "date2006",
            JaParameters::date2006(),
            ThermalCoefficients::date2006(),
        )
        .material_with_thermal(
            "hard-steel",
            JaParameters::hard_steel(),
            ThermalCoefficients::hard_steel(),
        )
        .backend(BackendKind::DirectTimeless)
        .config("dh10", JaConfig::default())
        .excitation(
            "major",
            Excitation::major_loop(10_000.0, 50.0, 1).expect("excitation"),
        );
    for &t_c in &TEMPERATURES {
        for &frequency in &FREQUENCIES {
            grid = grid.operating_point(
                format!("f{frequency}_t{t_c}"),
                OperatingPoint::at_temperature(t_c)
                    .with_frequency(frequency)
                    .with_geometry(CoreGeometry::demo()),
            );
        }
    }
    grid.scenarios().expect("non-empty grid")
}

/// One single-worker batch run under the given routing; the worker count
/// is pinned so the scalar-vs-SoA quotient measures the kernels, not the
/// scheduler.
fn run(scenarios: &[Scenario], routing: SoaRouting) -> BatchReport {
    BatchRunner::new()
        .workers(1)
        .soa_routing(routing)
        .run(scenarios.to_vec())
}

/// Prints the paper material's loss surface — the table `ja lossmap`
/// and `examples/loss_map.rs` render for users.
fn print_loss_surface() {
    let report = run(&scenarios(), SoaRouting::ForceScalar);
    assert_eq!(report.failures().count(), 0, "loss-map grid must succeed");
    println!("== loss map: date2006, +/-10 kA/m major loop, demo core ==");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12}",
        "T[degC]", "f[Hz]", "B_pk[T]", "P_hyst[W]", "P_total[W]"
    );
    for entry in &report.entries {
        let outcome = entry.outcome.as_ref().expect("ok");
        if !entry.scenario.name.contains("/date2006/") {
            continue;
        }
        let op = outcome.operating_point.expect("operating point");
        let loss = outcome.loss.expect("loss breakdown");
        let b_pk = outcome.metrics.expect("metrics").b_max.as_tesla();
        println!(
            "{:>8} {:>8} {:>10.3} {:>12.3} {:>12.3}",
            op.temperature_c.expect("temperature"),
            op.frequency_hz.expect("frequency"),
            b_pk,
            loss.hysteresis_w,
            loss.total_w
        );
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let scenarios = scenarios();
    let mut group = c.benchmark_group("loss_map");
    group.sample_size(10);
    group.bench_function("scalar_route", |b| {
        b.iter(|| black_box(run(&scenarios, SoaRouting::ForceScalar)))
    });
    group.bench_function("soa_route", |b| {
        b.iter(|| black_box(run(&scenarios, SoaRouting::ForceSoa)))
    });
    group.finish();
}

fn main() {
    print_loss_surface();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
