//! `ja batch` — run a scenario grid in parallel, emit the batch report.

use hdl_models::exec::BatchRunner;
use hdl_models::report::batch_report_value;

use crate::common::{read_input, write_output};
use crate::{grid_config, opts, CliError};

/// Per-subcommand help (see `ja help batch`).
pub const HELP: &str = "\
ja batch — run a scenario grid in parallel and emit a batch report (JSON)

USAGE:
    ja batch --config PATH [OPTIONS]

OPTIONS:
    --config PATH      grid config file (required; format below)
    --workers N        worker threads; 0 = one per core        [default: 0]
    --fail-fast        stop scheduling after the first failure (unexecuted
                       scenarios are reported as status \"cancelled\")
    --routing MODE     how same-shaped scenarios are executed [default: auto]
                         auto    groups of >= 2 timeless non-circuit
                                 scenarios sharing a config and excitation
                                 run as one structure-of-arrays lockstep
                                 sweep; everything else runs scalar
                         soa     lockstep even for singleton groups
                         scalar  always one scenario at a time
                       Routing never changes report content: SoA f64 lanes
                       are bit-identical to scalar runs.
    --timings          include the run-dependent timing fields (per-entry
                       wall_clock_ns/runtime_ns and a trailing `timing`
                       object with workers/elapsed_ns/serial_ns/speedup).
                       Off by default so the report is byte-identical for
                       any --workers value.
    --out PATH         write to PATH instead of stdout

GRID CONFIG (`key = value` lines; `#` comments; repeat a key to add a value
to that axis, the grid is the cartesian product of all axes):
    material   = date2006 | ja1984 | soft-ferrite | hard-steel
    backend    = direct | systemc | ams | time-domain | all | timeless
    dh_max     = <A/m>                          (one model config per value)
    excitation = major  peak=10000 step=100 cycles=1
    excitation = fig1   step=50
    excitation = biased bias=1000 amplitude=500 cycles=1 step=10
Omitted axes default to date2006 / the direct backend / ΔH_max = 10 A/m;
at least one excitation is required.

EXIT STATUS: 0 when every scenario succeeded, 1 otherwise (the report is
written either way).";

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options or config; failure when any scenario
/// failed (after writing the report) or output fails.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["fail-fast", "timings"],
        &["config", "workers", "routing", "out"],
    )?;
    parsed.no_positionals()?;

    let config_text = read_input(parsed.require("config")?)?;
    let grid = grid_config::parse_grid(&config_text)?;
    let scenarios = grid
        .scenarios()
        .map_err(|err| CliError::usage(err.to_string()))?;

    let mut runner = BatchRunner::new()
        .workers(parsed.usize_or("workers", 0)?)
        .soa_routing(crate::common::routing_by_name(
            parsed.value("routing").unwrap_or("auto"),
        )?);
    if parsed.flag("fail-fast") {
        runner = runner.fail_fast();
    }
    let report = runner.run(scenarios);

    let doc = batch_report_value(&report, parsed.flag("timings"));
    write_output(parsed.value("out"), &doc.to_pretty_string())?;

    let failed = report.entries.len() - report.successes().count();
    if failed > 0 {
        return Err(CliError::failure(format!(
            "{failed} of {} scenarios did not succeed",
            report.entries.len()
        )));
    }
    Ok(())
}
