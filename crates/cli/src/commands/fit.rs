//! `ja fit` — fit JA parameters to measured BH loops, with multi-start
//! parallel search.

use std::path::Path;

use hdl_models::fit::{fit_batch, FitJob, MultiStartOptions};
use hdl_models::report::fit_report_value;
use ja_hysteresis::fitting::FitOptions;
use magnetics::bh::BhCurve;
use waveform::export::read_csv;
use waveform::trace::Trace;

use crate::common::{read_input, write_output};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help fit`).
pub const HELP: &str = "\
ja fit — extract JA parameters from measured BH loops (CSV in, JSON out)

USAGE:
    ja fit --input PATH [OPTIONS]
    ja fit --config PATH [OPTIONS]

INPUT (exactly one of):
    --input PATH          one measured-loop CSV.  Header row names the
                          columns; the loop must contain at least one full
                          major cycle.
    --config PATH         fit a whole library: a file of `loop = <csv>`
                          lines (format below), fitted in one parallel
                          batch.

OPTIONS:
    --h-column NAME       field column                       [default: h]
    --b-column NAME       flux-density column                [default: b]
    --h-peak A_PER_M      measurement's peak field
                          [default: max |H| of each input]
    --starts N            starting points per loop (1 = the plain initial
                          guess; more escape local minima)   [default: 1]
    --seed S              starting-point seed                [default: 42]
    --workers W           worker threads; 0 = one per core   [default: 0]
    --routing MODE        candidate evaluation routing       [default: auto]
                            auto    loops with >= 2 starts descend in
                                    lockstep: each cost call evaluates all
                                    live candidates as lanes of one
                                    structure-of-arrays sweep
                            soa     lockstep even for a single start
                            scalar  one independent descent per start
                          Routing never changes report content: SoA f64
                          lanes are bit-identical to scalar evaluation.
    --passes N            coordinate-search passes per start [default: 6]
    --initial-step FRAC   initial relative perturbation      [default: 0.4]
    --sweep-step A_PER_M  candidate-sweep field step         [default: 50]
    --timings             include run-dependent timing fields (per-start
                          wall_clock_ns and a trailing `timing` object).
                          Off by default so the report is byte-identical
                          for any --workers value.
    --out PATH            write to PATH instead of stdout

FIT CONFIG (`key = value` lines; `#` comments; one measured loop per line,
paths relative to the config file):
    loop = core_a.csv
    loop = core_b.csv h_peak=10000 h=field b=flux name=ferrite-b
Execution knobs (--starts, --workers, --seed, ...) stay on the command
line, so the same library can be fitted under different budgets.

The JSON report is `kind: \"fit\"`: the envelope carries `starts` and
`seed`; each fitted loop reports `loop`, input_samples, h_peak_a_per_m,
the measured loop metrics, per-start `entries` (start, status, cost,
evaluations, params), `best_start`, and the best start's `params` object
(m_sat_a_per_m, a_a_per_m, a2_a_per_m, k_a_per_m, alpha, c), `cost`
(0 = exact metric match) and total `evaluations`.  With --input the
single loop's fields are flat in the envelope; with --config they nest
one object per loop under `loops`.";

/// Extracts a named column, with an error that lists what is available.
pub fn column<'t>(trace: &'t Trace, name: &str) -> Result<&'t [f64], CliError> {
    trace.column(name).map_err(|_| {
        CliError::failure(format!(
            "input has no column `{name}` (available: {})",
            trace.names().join(", ")
        ))
    })
}

/// Column names and optional peak override shared by both input modes.
struct LoopSpec {
    path: String,
    name: String,
    h_column: String,
    b_column: String,
    h_peak: Option<f64>,
}

/// Reads one measured-loop CSV into a [`FitJob`].
fn load_job(spec: &LoopSpec) -> Result<FitJob, CliError> {
    let text = read_input(&spec.path)?;
    let trace =
        read_csv(&text).map_err(|err| CliError::failure(format!("`{}`: {err}", spec.path)))?;
    let h = column(&trace, &spec.h_column)?;
    let b = column(&trace, &spec.b_column)?;
    let mut curve = BhCurve::with_capacity(h.len());
    for (&h, &b) in h.iter().zip(b) {
        curve.push_raw(h, b, 0.0);
    }
    Ok(match spec.h_peak {
        Some(h_peak) => FitJob::new(&spec.name, curve, h_peak),
        None => FitJob::with_auto_peak(&spec.name, curve),
    })
}

/// The loop's display name: the file stem of its path.
fn stem(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map_or_else(|| path.to_owned(), |s| s.to_string_lossy().into_owned())
}

/// Parses a fit config: `loop = <path> [h_peak=N] [h=COL] [b=COL]
/// [name=NAME]` lines, paths relative to the config file's directory.
fn parse_fit_config(
    text: &str,
    config_dir: &Path,
    default_h: &str,
    default_b: &str,
    default_peak: Option<f64>,
) -> Result<Vec<LoopSpec>, CliError> {
    let mut specs = Vec::new();
    for (lineno, line) in crate::common::config_lines(text) {
        let at = |message: String| CliError::usage(format!("fit config line {lineno}: {message}"));
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| at(format!("expected `loop = <path> ...`, got `{line}`")))?;
        if key.trim() != "loop" {
            return Err(at(format!("unknown key `{}` (expected loop)", key.trim())));
        }
        let mut tokens = value.split_whitespace();
        let path = tokens
            .next()
            .ok_or_else(|| at("missing CSV path".to_owned()))?;
        let path = config_dir.join(path).to_string_lossy().into_owned();
        let mut spec = LoopSpec {
            name: stem(&path),
            path,
            h_column: default_h.to_owned(),
            b_column: default_b.to_owned(),
            h_peak: default_peak,
        };
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| at(format!("loop parameter `{token}` is not `key=value`")))?;
            match key {
                "h_peak" => {
                    spec.h_peak = Some(value.parse::<f64>().map_err(|_| {
                        at(format!("loop parameter `h_peak={value}` is not a number"))
                    })?);
                }
                "h" => spec.h_column = value.to_owned(),
                "b" => spec.b_column = value.to_owned(),
                "name" => spec.name = value.to_owned(),
                other => {
                    return Err(at(format!(
                        "unknown loop parameter `{other}` (expected h_peak | h | b | name)"
                    )))
                }
            }
        }
        specs.push(spec);
    }
    if specs.is_empty() {
        return Err(CliError::usage(
            "fit config contains no `loop = <path>` lines".to_owned(),
        ));
    }
    Ok(specs)
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options/config; failures for unreadable/degenerate
/// input or a fit that cannot run.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["timings"],
        &[
            "input",
            "config",
            "h-column",
            "b-column",
            "h-peak",
            "starts",
            "seed",
            "workers",
            "routing",
            "passes",
            "initial-step",
            "sweep-step",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let options = MultiStartOptions {
        starts: parsed.usize_or("starts", 1)?,
        seed: parsed.usize_or("seed", 42)? as u64,
        workers: parsed.usize_or("workers", 0)?,
        routing: crate::common::routing_by_name(parsed.value("routing").unwrap_or("auto"))?,
        fit: FitOptions {
            passes: parsed.usize_or("passes", 6)?,
            initial_step: parsed.f64_or("initial-step", 0.4)?,
            sweep_step: parsed.f64_or("sweep-step", 50.0)?,
        },
    };
    // Bad option values are a bad invocation (exit 2), not a runtime
    // failure — mirror how `ja inverse` treats InverseOptions.
    options
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;

    let default_h = parsed.value("h-column").unwrap_or("h");
    let default_b = parsed.value("b-column").unwrap_or("b");
    let default_peak = match parsed.value("h-peak") {
        Some(_) => Some(parsed.f64_or("h-peak", 0.0)?),
        None => None,
    };

    let specs = match (parsed.value("input"), parsed.value("config")) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage(
                "--input and --config are mutually exclusive".to_owned(),
            ))
        }
        (None, None) => {
            return Err(CliError::usage(
                "--input or --config is required".to_owned(),
            ))
        }
        (Some(input), None) => vec![LoopSpec {
            path: input.to_owned(),
            name: stem(input),
            h_column: default_h.to_owned(),
            b_column: default_b.to_owned(),
            h_peak: default_peak,
        }],
        (None, Some(config)) => {
            let config_dir = Path::new(config)
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .to_path_buf();
            parse_fit_config(
                &read_input(config)?,
                &config_dir,
                default_h,
                default_b,
                default_peak,
            )?
        }
    };

    let jobs = specs
        .iter()
        .map(load_job)
        .collect::<Result<Vec<_>, CliError>>()?;
    let report = fit_batch(jobs, &options).map_err(|err| {
        CliError::failure(format!(
            "fit failed: {err} (is every input a closed BH loop?)"
        ))
    })?;

    let doc = fit_report_value(&report, parsed.flag("timings"));
    write_output(parsed.value("out"), &doc.to_pretty_string())?;

    let failed_loops = report.loops.iter().filter(|l| l.best.is_none()).count();
    if failed_loops > 0 {
        return Err(CliError::failure(format!(
            "{failed_loops} of {} loops had no successful start",
            report.loops.len()
        )));
    }
    Ok(())
}
