//! `ja transient` — run one circuit-driven scenario and export the BH
//! trace with the transient engine's statistics.

use hdl_models::scenario::Scenario;
use ja_hysteresis::config::JaConfig;
use waveform::export::ascii_plot;

use crate::common::{
    backend_by_name, circuit_excitation, config_name, enveloped_outcome, material_by_name,
    write_curve_csv, write_output, CircuitSpecArgs,
};
use crate::opts::Parsed;
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help transient`).
pub const HELP: &str = "\
ja transient — drive the core through a circuit (source → R → winding) and
export the BH trace the solver-chosen field trajectory produced

USAGE:
    ja transient [OPTIONS]

CIRCUIT (defaults reproduce the magnetising-inrush setup):
    --source KIND      sine | triangular | pwm                 [default: sine]
    --amplitude V      source peak voltage                     [default: 30]
    --frequency HZ     source frequency                        [default: 50]
    --duty X           pwm duty cycle in (0, 1); pwm only      [default: 0.5]
    --resistance OHMS  series resistance                       [default: 1]
    --turns N          winding turns                           [default: 200]
    --area M2          core cross-section                      [default: 1e-4]
    --path M           magnetic path length                    [default: 0.1]
    --t-end S          transient end time                      [default: 0.04]
    --dt S             fixed-step size; with --adaptive it seeds the
                       controller's initial step instead       [default: 5e-5]

STEP CONTROL:
    --adaptive         LTE-controlled variable steps instead of --dt
    --rel-tol X        adaptive relative tolerance             [default: 0.1]
    --abs-tol X        adaptive absolute tolerance             [default: 0.1]
    --max-step S       adaptive step ceiling                   [default: 1e-3]

MODEL:
    --backend NAME     direct | systemc | ams | time-domain    [default: direct]
    --material NAME    date2006 | ja1984 | soft-ferrite | hard-steel
                       [default: date2006]
    --dh-max A_PER_M   timeless discretisation threshold       [default: 10]

OUTPUT:
    --format FORMAT    ascii | csv | json                      [default: ascii]
    --width N          ascii plot width                        [default: 72]
    --height N         ascii plot height                       [default: 24]
    --timings          include runtime_ns in the JSON report
    --out PATH         write to PATH instead of stdout

The transient engine simulates the circuit around the in-circuit core
(built from --material/--dh-max) and the winding-current trajectory
H = N·i/l then drives --backend sample-by-sample.  The JSON report is
`kind: \"transient\"`: the envelope plus one scenario entry including the
deterministic `transient` step/Newton counters (see `ja --help`).";

fn optional_f64(parsed: &Parsed, name: &str) -> Result<Option<f64>, CliError> {
    match parsed.value(name) {
        None => Ok(None),
        Some(_) => parsed.f64_or(name, 0.0).map(Some),
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures for scenario or output errors.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["adaptive", "timings"],
        &[
            "source",
            "amplitude",
            "frequency",
            "duty",
            "resistance",
            "turns",
            "area",
            "path",
            "t-end",
            "dt",
            "rel-tol",
            "abs-tol",
            "max-step",
            "backend",
            "material",
            "dh-max",
            "format",
            "width",
            "height",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let backend = backend_by_name(parsed.value("backend").unwrap_or("direct"))?;
    let material_name = parsed.value("material").unwrap_or("date2006");
    let params = material_by_name(material_name)?;
    let dh_max = parsed.f64_or("dh-max", 10.0)?;
    let config = JaConfig::default().with_dh_max(dh_max);
    config
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;

    // Omitted options fall back to the inrush preset inside
    // `circuit_excitation` — the defaults in the help text above mirror
    // `CircuitExcitation::inrush` and are applied in exactly one place.
    let spec_args = CircuitSpecArgs {
        source: parsed.value("source"),
        amplitude: optional_f64(&parsed, "amplitude")?,
        frequency: optional_f64(&parsed, "frequency")?,
        duty: optional_f64(&parsed, "duty")?,
        resistance: optional_f64(&parsed, "resistance")?,
        turns: optional_f64(&parsed, "turns")?,
        area: optional_f64(&parsed, "area")?,
        path: optional_f64(&parsed, "path")?,
        t_end: optional_f64(&parsed, "t-end")?,
        dt: optional_f64(&parsed, "dt")?,
        adaptive: parsed.flag("adaptive"),
        rel_tol: optional_f64(&parsed, "rel-tol")?,
        abs_tol: optional_f64(&parsed, "abs-tol")?,
        max_step: optional_f64(&parsed, "max-step")?,
    };
    let named = circuit_excitation(&spec_args, "add --adaptive")?;

    let scenario = Scenario::new(
        format!(
            "{}/{}/{}/{material_name}",
            named.name,
            backend.label(),
            config_name(dh_max)
        ),
        params,
        config,
        backend,
        named.excitation,
    );
    let outcome = scenario
        .run()
        .map_err(|err| CliError::failure(err.to_string()))?;

    let out = parsed.value("out");
    match parsed.value("format").unwrap_or("ascii") {
        "json" => write_output(
            out,
            &enveloped_outcome("transient", &outcome, parsed.flag("timings")).to_pretty_string(),
        ),
        "csv" => write_curve_csv(out, &outcome.curve),
        "ascii" => {
            let h: Vec<f64> = outcome.curve.points().iter().map(|p| p.h.value()).collect();
            let b: Vec<f64> = outcome
                .curve
                .points()
                .iter()
                .map(|p| p.b.as_tesla())
                .collect();
            let plot = ascii_plot(
                &h,
                &b,
                parsed.usize_or("width", 72)?,
                parsed.usize_or("height", 24)?,
            )
            .map_err(|err| CliError::failure(err.to_string()))?;
            let mut text = format!(
                "{}  [{} samples]\n{plot}",
                outcome.name,
                outcome.curve.len()
            );
            let stats = outcome.transient.expect("circuit scenarios carry stats");
            text.push_str(&format!(
                "accepted_steps = {}\nrejected_steps = {}\nnewton_iterations = {}\n\
                 lu_solves = {}\nnon_converged_steps = {}\n",
                stats.accepted_steps,
                stats.rejected_steps,
                stats.newton_iterations,
                stats.lu_solves,
                stats.non_converged_steps,
            ));
            match &outcome.metrics {
                Some(m) => {
                    for (key, value) in m.named_values() {
                        text.push_str(&format!("{key} = {value}\n"));
                    }
                }
                None => text.push_str("(trace does not form a closable loop; no metrics)\n"),
            }
            write_output(out, &text)
        }
        other => Err(CliError::usage(format!(
            "unknown format `{other}` (expected ascii | csv | json)"
        ))),
    }
}
