//! Integration test for experiment E6: every implementation of the paper's
//! timeless technique produces virtually identical results, exercised
//! polymorphically through the `HysteresisBackend` trait, and the
//! event-driven module behaves identically under timeless DC sweeps and
//! timed testbenches.

use ja_repro::hdl_models::scenario::{backend_agreement, BackendKind, Excitation};
use ja_repro::hdl_models::systemc::SystemCJaCore;
use ja_repro::ja_hysteresis::backend::HysteresisBackend;
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::ja_hysteresis::model::JaStatistics;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::schedule::FieldSchedule;

/// Tolerance for backend equivalence on the Fig. 1 schedule, as a fraction
/// of the peak flux density (~2 T): 1% ≈ 20 mT.  The three timeless
/// implementations share the discretisation but differ in evaluation order
/// — the SystemC port settles the magnetisation feedback over delta cycles
/// while the library model runs a fixed-point iteration — so they agree
/// closely but not bit-exactly.
const EQUIVALENCE_TOLERANCE: f64 = 0.01;

fn fig1_backends() -> Vec<Box<dyn HysteresisBackend>> {
    let params = JaParameters::date2006();
    // ΔH_max stays at the paper's default regardless of the stimulus step:
    // the SystemC monitorH trigger is a strict `>`, so tying it to the
    // sample spacing would starve that port of updates.
    let config = JaConfig::default();
    BackendKind::TIMELESS
        .iter()
        .map(|kind| kind.build(params, config).expect("backend builds"))
        .collect()
}

#[test]
fn all_timeless_backends_agree_through_the_trait() {
    // Drive the SystemC-style, direct, and AMS-timeless backends through
    // the trait over the Fig. 1 schedule and compare sample by sample.
    let schedule = FieldSchedule::nested_minor_loops(10_000.0, &[7_500.0, 5_000.0, 2_500.0], 10.0)
        .expect("schedule");
    let mut curves = Vec::new();
    for backend in &mut fig1_backends() {
        let curve = backend.run_schedule(&schedule).expect("sweep");
        assert_eq!(curve.len(), schedule.len(), "{}", backend.label());
        assert!(backend.statistics().updates > 0, "{}", backend.label());
        curves.push((backend.label(), curve));
    }
    let peak = curves[0]
        .1
        .peak_flux_density()
        .expect("non-empty curve")
        .as_tesla();
    for (i, (label_a, a)) in curves.iter().enumerate() {
        for (label_b, b) in &curves[i + 1..] {
            let max_diff = a
                .points()
                .iter()
                .zip(b.points())
                .map(|(x, y)| (x.b.as_tesla() - y.b.as_tesla()).abs())
                .fold(0.0, f64::max);
            assert!(
                max_diff / peak < EQUIVALENCE_TOLERANCE,
                "{label_a} vs {label_b}: max |dB| = {max_diff} T ({:.3}% of peak)",
                100.0 * max_diff / peak
            );
        }
    }
}

#[test]
fn backend_agreement_reports_the_same_equivalence() {
    let report = backend_agreement(
        JaParameters::date2006(),
        JaConfig::default(),
        &Excitation::fig1(10.0).expect("excitation"),
        &BackendKind::TIMELESS,
    )
    .expect("all backends run");
    assert!(
        report.relative_diff < EQUIVALENCE_TOLERANCE,
        "implementations diverge by {:.3}% of B_max (worst pair {:?})",
        report.relative_diff * 100.0,
        report.worst_pair
    );
    assert!(report.outcomes.iter().all(|o| o.curve.len() > 10_000));
}

#[test]
fn reset_through_the_trait_restores_every_backend() {
    for backend in &mut fig1_backends() {
        backend.apply_field(8_000.0).expect("drive");
        backend.reset().expect("reset");
        assert_eq!(
            backend.statistics(),
            JaStatistics::default(),
            "{}",
            backend.label()
        );
        let sample = backend.apply_field(0.0).expect("drive after reset");
        assert!(
            sample.b.as_tesla().abs() < 1e-9,
            "{} should be demagnetised after reset",
            backend.label()
        );
    }
}

#[test]
fn reused_kernel_reproduces_the_systemc_curve_byte_for_byte() {
    // The kernel-reuse contract: running the Fig. 1 sweep on a freshly
    // built module and re-running it on the *same* module after
    // `reset()` must produce byte-identical curves — the reused kernel
    // instance is indistinguishable from a new one.
    let schedule = FieldSchedule::nested_minor_loops(10_000.0, &[7_500.0, 5_000.0, 2_500.0], 10.0)
        .expect("schedule");
    let mut module = SystemCJaCore::date2006().expect("module");
    let fresh = module.run_schedule(&schedule).expect("first sweep");
    for round in 0..2 {
        HysteresisBackend::reset(&mut module).expect("reset");
        let reused = module.run_schedule(&schedule).expect("reused sweep");
        assert_eq!(fresh.len(), reused.len());
        for (i, (a, b)) in fresh.points().iter().zip(reused.points()).enumerate() {
            assert_eq!(
                a.b.as_tesla().to_bits(),
                b.b.as_tesla().to_bits(),
                "B diverges at sample {i} on reuse round {round}"
            );
            assert_eq!(
                a.m.as_amperes_per_meter().to_bits(),
                b.m.as_amperes_per_meter().to_bits(),
                "M diverges at sample {i} on reuse round {round}"
            );
        }
    }
}

#[test]
fn timed_and_untimed_execution_of_the_same_module_agree() {
    let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 1).expect("schedule");
    let samples = schedule.to_samples();

    let mut dc = SystemCJaCore::date2006().expect("module");
    let dc_curve = dc.run_schedule(&schedule).expect("dc sweep");

    let mut timed = SystemCJaCore::date2006().expect("module");
    let (timed_curve, _recorder) = timed.run_timed(&samples, 1e-6).expect("timed run");

    assert_eq!(dc_curve.len(), timed_curve.len());
    for (a, b) in dc_curve.points().iter().zip(timed_curve.points()) {
        assert!((a.b.as_tesla() - b.b.as_tesla()).abs() < 1e-12);
    }
}

#[test]
fn equivalence_holds_for_coarser_discretisation_too() {
    let report = backend_agreement(
        JaParameters::date2006(),
        JaConfig::default(),
        &Excitation::fig1(50.0).expect("excitation"),
        &BackendKind::TIMELESS,
    )
    .expect("all backends run");
    assert!(
        report.relative_diff < 0.02,
        "implementations diverge by {:.3}% of B_max at 50 A/m steps",
        report.relative_diff * 100.0
    );
}
