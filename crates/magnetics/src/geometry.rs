//! Magnetic core geometry and windings.
//!
//! The paper's SystemC model multiplies the flux density by a core area to
//! report flux (`B = MU0*area*(ms*mtotal + H)` in the listing is actually a
//! flux, Φ = B·A).  When the core is embedded in a circuit (the analogue
//! solver substrate), the geometry also converts winding current into field
//! strength (`H = N·I / l_m`) and flux change into induced voltage
//! (`v = N·dΦ/dt`).

use crate::error::MagneticsError;
use crate::units::{FieldStrength, FluxDensity, MagneticFlux};

/// Geometry of a magnetic core: effective cross-section area and effective
/// magnetic path length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreGeometry {
    area_m2: f64,
    path_length_m: f64,
}

impl CoreGeometry {
    /// Creates a core geometry from an effective area (m²) and an effective
    /// magnetic path length (m).
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidGeometry`] when either value is not
    /// finite and strictly positive.
    pub fn new(area_m2: f64, path_length_m: f64) -> Result<Self, MagneticsError> {
        if !area_m2.is_finite() || area_m2 <= 0.0 {
            return Err(MagneticsError::InvalidGeometry {
                name: "area_m2",
                value: area_m2,
            });
        }
        if !path_length_m.is_finite() || path_length_m <= 0.0 {
            return Err(MagneticsError::InvalidGeometry {
                name: "path_length_m",
                value: path_length_m,
            });
        }
        Ok(Self {
            area_m2,
            path_length_m,
        })
    }

    /// A toroidal core described by inner/outer radius and height (all in
    /// metres): area = (r_out − r_in)·h, path length = 2π·(r_in + r_out)/2.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidGeometry`] when the radii are not
    /// ordered `0 < r_in < r_out` or the height is not positive.
    pub fn toroid(
        inner_radius_m: f64,
        outer_radius_m: f64,
        height_m: f64,
    ) -> Result<Self, MagneticsError> {
        if !(inner_radius_m.is_finite() && inner_radius_m > 0.0) {
            return Err(MagneticsError::InvalidGeometry {
                name: "inner_radius_m",
                value: inner_radius_m,
            });
        }
        if !(outer_radius_m.is_finite() && outer_radius_m > inner_radius_m) {
            return Err(MagneticsError::InvalidGeometry {
                name: "outer_radius_m",
                value: outer_radius_m,
            });
        }
        if !(height_m.is_finite() && height_m > 0.0) {
            return Err(MagneticsError::InvalidGeometry {
                name: "height_m",
                value: height_m,
            });
        }
        let area = (outer_radius_m - inner_radius_m) * height_m;
        let path = std::f64::consts::PI * (inner_radius_m + outer_radius_m);
        Self::new(area, path)
    }

    /// A small demonstration core (1 cm² area, 10 cm path) used by the
    /// examples and benches.
    pub fn demo() -> Self {
        Self {
            area_m2: 1.0e-4,
            path_length_m: 0.1,
        }
    }

    /// Effective cross-section area in m².
    pub fn area_m2(&self) -> f64 {
        self.area_m2
    }

    /// Effective magnetic path length in m.
    pub fn path_length_m(&self) -> f64 {
        self.path_length_m
    }

    /// Core volume in m³ (area × path length); multiplying the loop area
    /// (J/m³) by this gives the energy lost per cycle in joules.
    pub fn volume_m3(&self) -> f64 {
        self.area_m2 * self.path_length_m
    }

    /// Flux through the core for a given flux density.
    pub fn flux(&self, b: FluxDensity) -> MagneticFlux {
        b.flux_through(self.area_m2)
    }
}

/// A winding of `turns` turns around a [`CoreGeometry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Winding {
    turns: u32,
    core: CoreGeometry,
}

impl Winding {
    /// Creates a winding.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidGeometry`] when `turns` is zero.
    pub fn new(turns: u32, core: CoreGeometry) -> Result<Self, MagneticsError> {
        if turns == 0 {
            return Err(MagneticsError::InvalidGeometry {
                name: "turns",
                value: 0.0,
            });
        }
        Ok(Self { turns, core })
    }

    /// Number of turns.
    pub fn turns(&self) -> u32 {
        self.turns
    }

    /// The wound core.
    pub fn core(&self) -> &CoreGeometry {
        &self.core
    }

    /// Field strength produced by a winding current (ampere-turns over the
    /// magnetic path): `H = N·i / l_m`.
    pub fn field_from_current(&self, current_a: f64) -> FieldStrength {
        FieldStrength::new(self.turns as f64 * current_a / self.core.path_length_m())
    }

    /// Winding current needed to produce a given field strength.
    pub fn current_for_field(&self, h: FieldStrength) -> f64 {
        h.value() * self.core.path_length_m() / self.turns as f64
    }

    /// Flux linkage `λ = N·Φ` for a flux density in the core.
    pub fn flux_linkage(&self, b: FluxDensity) -> f64 {
        self.turns as f64 * self.core.flux(b).as_weber()
    }

    /// Induced voltage for a rate of change of flux density (T/s):
    /// `v = N·A·dB/dt`.
    pub fn induced_voltage(&self, db_dt: f64) -> f64 {
        self.turns as f64 * self.core.area_m2() * db_dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_positive_dimensions() {
        assert!(CoreGeometry::new(0.0, 0.1).is_err());
        assert!(CoreGeometry::new(1e-4, -1.0).is_err());
        assert!(CoreGeometry::new(f64::NAN, 0.1).is_err());
        assert!(CoreGeometry::new(1e-4, 0.1).is_ok());
    }

    #[test]
    fn toroid_dimensions() {
        let core = CoreGeometry::toroid(0.01, 0.02, 0.005).unwrap();
        assert!((core.area_m2() - 0.01 * 0.005).abs() < 1e-12);
        assert!((core.path_length_m() - std::f64::consts::PI * 0.03).abs() < 1e-12);
        assert!(core.volume_m3() > 0.0);
    }

    #[test]
    fn toroid_rejects_bad_radii() {
        assert!(CoreGeometry::toroid(-0.01, 0.02, 0.005).is_err());
        assert!(CoreGeometry::toroid(0.02, 0.01, 0.005).is_err());
        assert!(CoreGeometry::toroid(0.01, 0.02, 0.0).is_err());
    }

    #[test]
    fn flux_through_core() {
        let core = CoreGeometry::demo();
        let phi = core.flux(FluxDensity::new(1.5));
        assert!((phi.as_weber() - 1.5e-4).abs() < 1e-12);
    }

    #[test]
    fn winding_field_current_roundtrip() {
        let w = Winding::new(100, CoreGeometry::demo()).unwrap();
        let h = w.field_from_current(2.0);
        assert!((h.value() - 100.0 * 2.0 / 0.1).abs() < 1e-9);
        let i = w.current_for_field(h);
        assert!((i - 2.0).abs() < 1e-12);
    }

    #[test]
    fn winding_rejects_zero_turns() {
        assert!(Winding::new(0, CoreGeometry::demo()).is_err());
    }

    #[test]
    fn flux_linkage_and_induced_voltage() {
        let w = Winding::new(50, CoreGeometry::demo()).unwrap();
        assert!((w.flux_linkage(FluxDensity::new(1.0)) - 50.0 * 1.0e-4).abs() < 1e-12);
        // dB/dt = 100 T/s through 1 cm^2 with 50 turns -> 0.5 V
        assert!((w.induced_voltage(100.0) - 0.5).abs() < 1e-12);
    }
}
