//! Versioned, machine-readable serialization of scenario/batch results.
//!
//! This module turns the scenario engine's in-memory results
//! ([`BatchReport`], [`ScenarioOutcome`], [`AgreementReport`]) into the
//! workspace's shared JSON report format (see [`ja_hysteresis::json`]): an
//! envelope of `schema_version` + `kind` followed by kind-specific fields.
//! The `ja` CLI emits these documents and CI consumes them, so two
//! properties are load-bearing:
//!
//! * **Determinism.** By default every timing-dependent field (wall-clock,
//!   worker count, speedup) is omitted, so the same scenario grid produces
//!   byte-identical reports regardless of worker count or machine load —
//!   `ja batch --workers 1` and `--workers 8` are asserted identical in the
//!   CLI's tests.  Passing `timings: true` opts into a `timing` object and
//!   per-entry `*_ns` fields for profiling consumers.
//! * **Stable keys.** Metric keys come from
//!   [`LoopMetrics::named_values`], statistics keys mirror
//!   [`JaStatistics`] field names; both are part of the schema and only
//!   change with a [`SCHEMA_VERSION`] bump.

use std::time::Duration;

use ja_hysteresis::json::{JsonValue, SCHEMA_VERSION, SCHEMA_VERSION_KEY};
use ja_hysteresis::model::JaStatistics;
use magnetics::loop_analysis::LoopMetrics;
use magnetics::material::JaParameters;

use crate::fit::{FitReport, LoopFit, StartFit};
use crate::scenario::{AgreementReport, BatchEntry, BatchReport, ScenarioOutcome, TransientStats};

/// A fresh report object carrying the shared envelope: `schema_version`
/// first, then `kind`.
pub fn report_envelope(kind: &str) -> JsonValue {
    JsonValue::object()
        .with(SCHEMA_VERSION_KEY, SCHEMA_VERSION)
        .with("kind", kind)
}

/// Serialises loop metrics with the schema's unit-suffixed keys.
///
/// `negative_slope_samples` is written as an integer; the other five
/// metrics as floats.
pub fn metrics_value(metrics: &LoopMetrics) -> JsonValue {
    let mut obj = JsonValue::object();
    for (key, value) in metrics.named_values() {
        if key == "negative_slope_samples" {
            obj.push(key, value as i64);
        } else {
            obj.push(key, value);
        }
    }
    obj
}

/// Serialises the backend cost counters (keys mirror the
/// [`JaStatistics`] field names).
pub fn stats_value(stats: &JaStatistics) -> JsonValue {
    JsonValue::object()
        .with("samples", stats.samples)
        .with("updates", stats.updates)
        .with("slope_evaluations", stats.slope_evaluations)
        .with("negative_slope_events", stats.negative_slope_events)
        .with("rejected_updates", stats.rejected_updates)
}

/// Serialises the transient engine's step/Newton counters (keys mirror the
/// [`TransientStats`] field names).  Present only on circuit-driven
/// scenario entries; the counters are pure float-arithmetic step-control
/// outcomes — deterministic across worker counts and machines — so they
/// are NOT gated behind the opt-in timing fields.
pub fn transient_value(stats: &TransientStats) -> JsonValue {
    JsonValue::object()
        .with("accepted_steps", stats.accepted_steps)
        .with("rejected_steps", stats.rejected_steps)
        .with("newton_iterations", stats.newton_iterations)
        .with("lu_solves", stats.lu_solves)
        .with("non_converged_steps", stats.non_converged_steps)
}

/// A [`Duration`] as integer nanoseconds (saturating at `i64::MAX`, which
/// is ~292 years — no real run gets there).
pub fn duration_ns(duration: Duration) -> JsonValue {
    JsonValue::Int(i64::try_from(duration.as_nanos()).unwrap_or(i64::MAX))
}

/// Serialises one successful scenario outcome.
///
/// Always present: `scenario`, `status: "ok"`, `backend`, `samples`,
/// `metrics` (object or `null` for traces that do not form a closable
/// loop) and `stats`.  Circuit-driven outcomes add a `transient` object
/// (see [`transient_value`]).  With `timings`, adds `runtime_ns` (sweep
/// only) and, for outcomes produced by a structure-of-arrays lockstep
/// group, `backend_routing: "soa"` plus `lockstep_lanes`.
pub fn outcome_value(outcome: &ScenarioOutcome, timings: bool) -> JsonValue {
    let mut obj = JsonValue::object()
        .with("scenario", outcome.name.as_str())
        .with("status", "ok")
        .with("backend", outcome.backend.label())
        .with("samples", outcome.curve.len())
        .with(
            "metrics",
            outcome
                .metrics
                .as_ref()
                .map_or(JsonValue::Null, metrics_value),
        )
        .with("stats", stats_value(&outcome.stats));
    if let Some(transient) = &outcome.transient {
        obj.push("transient", transient_value(transient));
    }
    if timings {
        obj.push("runtime_ns", duration_ns(outcome.runtime));
        // Routing is run-dependent scheduling detail, not result content
        // (SoA f64 lanes are bit-identical to scalar runs), so it rides
        // with the opt-in timing fields.
        if let Some(lanes) = outcome.lockstep_lanes {
            obj.push("backend_routing", "soa");
            obj.push("lockstep_lanes", lanes);
        }
    }
    obj
}

/// Serialises one batch entry (outcome or failure).
///
/// Failed entries get `status: "error"` (or `"cancelled"` for entries a
/// fail-fast batch never ran) and an `error` message instead of the
/// outcome fields.  With `timings`, adds `wall_clock_ns` (backend
/// construction + sweep + metric extraction on the worker).
pub fn entry_value(entry: &BatchEntry, timings: bool) -> JsonValue {
    let mut obj = match &entry.outcome {
        Ok(outcome) => outcome_value(outcome, timings),
        Err(err) => JsonValue::object()
            .with("scenario", entry.scenario.name.as_str())
            .with(
                "status",
                if matches!(err, ja_hysteresis::error::JaError::Cancelled) {
                    "cancelled"
                } else {
                    "error"
                },
            )
            .with("error", err.to_string()),
    };
    if timings {
        obj.push("wall_clock_ns", duration_ns(entry.wall_clock));
    }
    obj
}

/// Serialises a whole batch run as a `kind: "batch"` report.
///
/// Deterministic fields: `scenarios`, `succeeded`, `failed` and the
/// input-ordered `entries`.  With `timings`, a trailing `timing` object
/// adds `workers`, `elapsed_ns`, `serial_ns` and `speedup` (all of which
/// vary run to run, which is why they are opt-in).
pub fn batch_report_value(report: &BatchReport, timings: bool) -> JsonValue {
    let mut obj = report_envelope("batch")
        .with("scenarios", report.entries.len())
        .with("succeeded", report.successes().count())
        .with("failed", report.entries.len() - report.successes().count())
        .with(
            "entries",
            JsonValue::Array(
                report
                    .entries
                    .iter()
                    .map(|entry| entry_value(entry, timings))
                    .collect(),
            ),
        );
    if timings {
        obj.push(
            "timing",
            JsonValue::object()
                .with("workers", report.workers)
                .with("elapsed_ns", duration_ns(report.elapsed))
                .with("serial_ns", duration_ns(report.serial_runtime()))
                .with("speedup", report.speedup()),
        );
    }
    obj
}

/// Serialises a backend-agreement comparison as a `kind: "compare"` report:
/// worst pairwise |ΔB| (absolute and relative to peak |B|), the worst pair,
/// and one outcome entry per backend.
pub fn agreement_value(report: &AgreementReport, timings: bool) -> JsonValue {
    report_envelope("compare")
        .with("max_abs_diff_b_t", report.max_abs_diff_b)
        .with("relative_diff", report.relative_diff)
        .with(
            "worst_pair",
            report.worst_pair.map_or(JsonValue::Null, |(a, b)| {
                JsonValue::Array(vec![a.label().into(), b.label().into()])
            }),
        )
        .with(
            "outcomes",
            JsonValue::Array(
                report
                    .outcomes
                    .iter()
                    .map(|outcome| outcome_value(outcome, timings))
                    .collect(),
            ),
        )
}

/// Serialises a JA parameter set with the schema's unit-suffixed keys.
pub fn params_value(params: &JaParameters) -> JsonValue {
    JsonValue::object()
        .with("m_sat_a_per_m", params.m_sat.value())
        .with("a_a_per_m", params.a)
        .with("a2_a_per_m", params.a2)
        .with("k_a_per_m", params.k)
        .with("alpha", params.alpha)
        .with("c", params.c)
}

/// Serialises one starting point of a multi-start fit: the `start`
/// parameters, `status` (`ok` | `error`), the `evaluations` this start
/// consumed (counted for failed starts too — a failing evaluation still
/// simulates), and on success the per-start `cost` and fitted `params`.
/// With `timings`, adds `wall_clock_ns`.
pub fn start_fit_value(entry: &StartFit, timings: bool) -> JsonValue {
    let mut obj = JsonValue::object().with("start", params_value(&entry.start));
    match &entry.result {
        Ok(result) => {
            obj.push("status", "ok");
            obj.push("cost", result.cost);
            obj.push("evaluations", entry.evaluations);
            obj.push("params", params_value(&result.params));
        }
        Err(err) => {
            obj.push("status", "error");
            obj.push("error", err.to_string());
            obj.push("evaluations", entry.evaluations);
        }
    }
    if timings {
        obj.push("wall_clock_ns", duration_ns(entry.wall_clock));
    }
    obj
}

/// Serialises one fitted loop: `loop` name, `input_samples`,
/// `h_peak_a_per_m`, the `measured` metrics, the per-start `entries`,
/// `best_start` (index | null) and the best start's `params`/`cost`
/// (null when every start failed) plus the aggregate `evaluations`.
pub fn loop_fit_value(loop_fit: &LoopFit, timings: bool) -> JsonValue {
    let best = loop_fit.best_fit();
    JsonValue::object()
        .with("loop", loop_fit.name.as_str())
        .with("input_samples", loop_fit.input_samples)
        .with("h_peak_a_per_m", loop_fit.h_peak)
        .with("measured", metrics_value(&loop_fit.measured))
        .with(
            "entries",
            JsonValue::Array(
                loop_fit
                    .starts
                    .iter()
                    .map(|entry| start_fit_value(entry, timings))
                    .collect(),
            ),
        )
        .with(
            "best_start",
            loop_fit
                .best
                .map_or(JsonValue::Null, |i| JsonValue::Int(i as i64)),
        )
        .with(
            "params",
            best.map_or(JsonValue::Null, |r| params_value(&r.params)),
        )
        .with("cost", best.map_or(JsonValue::Null, |r| r.cost.into()))
        .with("evaluations", loop_fit.evaluations())
}

/// Serialises a multi-start fit batch as a `kind: "fit"` report.
///
/// The envelope carries `starts` and `seed`; a single-loop report inlines
/// that loop's fields flat (the shape `ja fit --input` has always emitted,
/// now with the per-start `entries` added), while a library fit nests one
/// object per loop under `loops`.  Timing fields are opt-in via `timings`,
/// so the default report is byte-identical for any worker count.
pub fn fit_report_value(report: &FitReport, timings: bool) -> JsonValue {
    // The lossless cast is guaranteed by `MultiStartOptions::validate`,
    // which rejects seeds beyond i64::MAX before a batch runs.
    let mut obj = report_envelope("fit")
        .with("starts", report.starts)
        .with("seed", i64::try_from(report.seed).unwrap_or(i64::MAX));
    if let [only] = report.loops.as_slice() {
        if let JsonValue::Object(fields) = loop_fit_value(only, timings) {
            for (key, value) in fields {
                obj.push(key, value);
            }
        }
    } else {
        obj.push(
            "loops",
            JsonValue::Array(
                report
                    .loops
                    .iter()
                    .map(|loop_fit| loop_fit_value(loop_fit, timings))
                    .collect(),
            ),
        );
    }
    if timings {
        let mut timing = JsonValue::object()
            .with("workers", report.workers)
            .with("elapsed_ns", duration_ns(report.elapsed))
            .with("serial_ns", duration_ns(report.serial_runtime()))
            .with("speedup", report.speedup());
        // Routing is run-dependent scheduling detail, not result content
        // (SoA f64 lanes are bit-identical to scalar evaluation), so it
        // rides with the opt-in timing fields.
        if let Some(lanes) = report.lockstep_lanes {
            timing.push("backend_routing", "soa");
            timing.push("lockstep_lanes", lanes);
        }
        obj.push("timing", timing);
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BatchRunner;
    use crate::scenario::{backend_agreement, BackendKind, Excitation, Scenario, ScenarioGrid};
    use ja_hysteresis::config::JaConfig;
    use magnetics::material::JaParameters;

    fn grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .backends(BackendKind::TIMELESS)
            .config("dh10", JaConfig::default())
            .excitation(
                "major",
                Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
            )
    }

    #[test]
    fn batch_report_is_byte_identical_across_worker_counts() {
        let scenarios = grid().scenarios().expect("grid");
        let serial = BatchRunner::new().workers(1).run(scenarios.clone());
        let parallel = BatchRunner::new().workers(4).run(scenarios);
        let a = batch_report_value(&serial, false).to_pretty_string();
        let b = batch_report_value(&parallel, false).to_pretty_string();
        assert_eq!(a, b);
        // The opt-in timing block is what breaks the identity.
        let timed = batch_report_value(&serial, true).to_pretty_string();
        assert!(timed.contains("\"timing\""));
        assert!(timed.contains("\"workers\": 1"));
        assert!(!a.contains("workers"));
        assert!(!a.contains("_ns"));
    }

    #[test]
    fn batch_report_has_envelope_and_entry_fields() {
        let report = BatchRunner::new()
            .workers(1)
            .run(grid().scenarios().unwrap());
        let value = batch_report_value(&report, false);
        assert_eq!(
            value.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(value.get("kind").and_then(JsonValue::as_str), Some("batch"));
        assert_eq!(value.get("scenarios").and_then(JsonValue::as_i64), Some(3));
        assert_eq!(value.get("succeeded").and_then(JsonValue::as_i64), Some(3));
        assert_eq!(value.get("failed").and_then(JsonValue::as_i64), Some(0));
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 3);
        for entry in entries {
            assert_eq!(entry.get("status").and_then(JsonValue::as_str), Some("ok"));
            assert!(entry.get("scenario").is_some());
            let metrics = entry.get("metrics").unwrap().as_object().unwrap();
            let expected: Vec<&str> = LoopMetrics::named_values(
                &magnetics::loop_analysis::loop_metrics(
                    &Scenario::fig1(BackendKind::DirectTimeless, 100.0)
                        .unwrap()
                        .run()
                        .unwrap()
                        .curve,
                )
                .unwrap(),
            )
            .iter()
            .map(|(k, _)| *k)
            .collect();
            let got: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(got, expected, "metric keys match LoopMetrics::named_values");
            let stats = entry.get("stats").unwrap().as_object().unwrap();
            assert_eq!(stats[0].0, "samples");
            assert_eq!(stats.len(), 5);
        }
        // The serialized document parses back.
        let text = value.to_pretty_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
    }

    #[test]
    fn failed_and_cancelled_entries_are_distinguished() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 250.0, 1).unwrap(),
        );
        let good = Scenario::fig1(BackendKind::DirectTimeless, 250.0).unwrap();
        let report = BatchRunner::new().workers(1).fail_fast().run([bad, good]);
        let value = batch_report_value(&report, false);
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(
            entries[0].get("status").and_then(JsonValue::as_str),
            Some("error")
        );
        assert!(entries[0].get("error").is_some());
        assert!(entries[0].get("metrics").is_none());
        assert_eq!(
            entries[1].get("status").and_then(JsonValue::as_str),
            Some("cancelled")
        );
        assert_eq!(value.get("failed").and_then(JsonValue::as_i64), Some(2));
    }

    #[test]
    fn circuit_entries_carry_transient_stats_and_stay_deterministic() {
        use crate::scenario::{CircuitExcitation, StepControl};
        // A mixed grid: one field-driven and two circuit-driven scenarios
        // (fixed and adaptive control).  The report must be byte-identical
        // across worker counts — the transient counters are deterministic
        // step-control outcomes, not timings.
        let adaptive = CircuitExcitation::inrush()
            .with_step_control(StepControl::Adaptive(CircuitExcitation::adaptive_defaults()));
        let grid = ScenarioGrid::new()
            .backend(BackendKind::DirectTimeless)
            .excitation("major", Excitation::major_loop(10_000.0, 250.0, 1).unwrap())
            .excitation(
                "inrush-fixed",
                Excitation::Circuit(CircuitExcitation::inrush()),
            )
            .excitation("inrush-adaptive", Excitation::Circuit(adaptive));
        let scenarios = grid.scenarios().unwrap();
        let serial = BatchRunner::new().workers(1).run(scenarios.clone());
        let parallel = BatchRunner::new().workers(4).run(scenarios);
        let a = batch_report_value(&serial, false).to_pretty_string();
        let b = batch_report_value(&parallel, false).to_pretty_string();
        assert_eq!(a, b, "mixed batch reports must not depend on workers");

        let value = batch_report_value(&serial, false);
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 3);
        assert!(
            entries[0].get("transient").is_none(),
            "field-driven entries carry no transient object"
        );
        for entry in &entries[1..] {
            let transient = entry.get("transient").unwrap().as_object().unwrap();
            let keys: Vec<&str> = transient.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                [
                    "accepted_steps",
                    "rejected_steps",
                    "newton_iterations",
                    "lu_solves",
                    "non_converged_steps"
                ]
            );
            assert!(
                transient[0].1.as_i64().unwrap() > 0,
                "accepted_steps present and positive"
            );
        }
        // The adaptive entry took fewer steps than the fixed one.
        let steps = |entry: &JsonValue| {
            entry
                .get("transient")
                .and_then(|t| t.get("accepted_steps"))
                .and_then(JsonValue::as_i64)
                .unwrap()
        };
        assert!(steps(&entries[2]) < steps(&entries[1]));
    }

    #[test]
    fn fit_report_inlines_single_loops_and_nests_libraries() {
        use crate::fit::{fit_batch, FitJob, MultiStartOptions};
        use ja_hysteresis::backend::HysteresisBackend;
        use ja_hysteresis::fitting::FitOptions;
        use ja_hysteresis::model::JilesAtherton;

        let measured = |params: JaParameters| {
            let mut model = JilesAtherton::new(params).unwrap();
            model
                .run_schedule(
                    &waveform::schedule::FieldSchedule::major_loop(10_000.0, 250.0, 2).unwrap(),
                )
                .unwrap()
        };
        let options = MultiStartOptions {
            starts: 3,
            workers: 2,
            fit: FitOptions {
                passes: 1,
                sweep_step: 500.0,
                ..FitOptions::default()
            },
            ..MultiStartOptions::default()
        };

        // Single loop: flat fields, ja-fit compatible.
        let single = fit_batch(
            vec![FitJob::with_auto_peak(
                "date2006",
                measured(JaParameters::date2006()),
            )],
            &options,
        )
        .unwrap();
        let value = fit_report_value(&single, false);
        assert_eq!(value.get("kind").and_then(JsonValue::as_str), Some("fit"));
        assert_eq!(value.get("starts").and_then(JsonValue::as_i64), Some(3));
        assert_eq!(value.get("seed").and_then(JsonValue::as_i64), Some(42));
        assert_eq!(
            value.get("loop").and_then(JsonValue::as_str),
            Some("date2006")
        );
        assert!(value.get("loops").is_none(), "single loop inlines flat");
        assert!(value.get("h_peak_a_per_m").is_some());
        assert!(value.get("measured").is_some());
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 3);
        for entry in entries {
            assert_eq!(entry.get("status").and_then(JsonValue::as_str), Some("ok"));
            assert!(entry.get("start").is_some());
            assert!(entry.get("cost").and_then(JsonValue::as_f64).is_some());
            let params = entry.get("params").unwrap().as_object().unwrap();
            assert_eq!(params[0].0, "m_sat_a_per_m");
            assert_eq!(params.len(), 6);
            assert!(entry.get("wall_clock_ns").is_none(), "timings are opt-in");
        }
        let best = value.get("best_start").and_then(JsonValue::as_i64).unwrap();
        let best_cost = entries[best as usize]
            .get("cost")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(
            value.get("cost").and_then(JsonValue::as_f64),
            Some(best_cost)
        );
        assert!(value.get("timing").is_none());
        // The document parses back.
        let text = value.to_pretty_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);

        // A library fit nests per-loop objects.
        let library = fit_batch(
            vec![
                FitJob::with_auto_peak("date2006", measured(JaParameters::date2006())),
                FitJob::with_auto_peak("hard-steel", measured(JaParameters::hard_steel())),
            ],
            &options,
        )
        .unwrap();
        let value = fit_report_value(&library, true);
        let loops = value.get("loops").unwrap().as_array().unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(
            loops[1].get("loop").and_then(JsonValue::as_str),
            Some("hard-steel")
        );
        assert!(
            value.get("measured").is_none(),
            "library form has no flat loop"
        );
        assert!(value.get("timing").is_some(), "--timings adds the block");
        let entry = &loops[0].get("entries").unwrap().as_array().unwrap()[0];
        assert!(entry.get("wall_clock_ns").is_some());
    }

    #[test]
    fn non_loop_metrics_serialise_as_null() {
        // A biased minor loop never crosses B = 0 -> metrics are None.
        let scenario = Scenario::new(
            "biased",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::biased_minor_loop(9_000.0, 500.0, 1, 50.0).unwrap(),
        );
        let outcome = scenario.run().unwrap();
        assert!(outcome.metrics.is_none());
        let value = outcome_value(&outcome, false);
        assert_eq!(value.get("metrics"), Some(&JsonValue::Null));
    }

    #[test]
    fn agreement_report_serialises_with_envelope() {
        let report = backend_agreement(
            JaParameters::date2006(),
            JaConfig::default(),
            &Excitation::major_loop(10_000.0, 250.0, 1).unwrap(),
            &BackendKind::TIMELESS,
        )
        .unwrap();
        let value = agreement_value(&report, false);
        assert_eq!(
            value.get("kind").and_then(JsonValue::as_str),
            Some("compare")
        );
        assert!(value
            .get("max_abs_diff_b_t")
            .and_then(JsonValue::as_f64)
            .is_some());
        let pair = value.get("worst_pair").unwrap().as_array().unwrap();
        assert_eq!(pair.len(), 2);
        assert_eq!(value.get("outcomes").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn duration_ns_saturates() {
        assert_eq!(
            duration_ns(Duration::from_nanos(1500)),
            JsonValue::Int(1500)
        );
        assert_eq!(duration_ns(Duration::MAX), JsonValue::Int(i64::MAX));
    }
}
