//! Cross-crate equivalence tests of the structure-of-arrays lockstep
//! kernel (`ja_hysteresis::soa`): in `f64` mode every lane must be
//! **bit-identical** to a scalar [`JilesAtherton`] run of the same
//! parameters, configuration and samples; in `f32` state mode the flux
//! density must stay within the documented tolerance of the scalar
//! reference.

use ja_repro::ja_hysteresis::backend::HysteresisBackend;
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::ja_hysteresis::model::JilesAtherton;
use ja_repro::ja_hysteresis::params::AnhystereticChoice;
use ja_repro::ja_hysteresis::soa::{SoaBatch, SoaPrecision};
use ja_repro::magnetics::bh::BhCurve;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::magnetics::units::Magnetisation;
use ja_repro::waveform::schedule::FieldSchedule;
use proptest::prelude::*;

/// The scalar reference: one model object walking the same samples.
fn scalar_curve(params: JaParameters, config: JaConfig, samples: &[f64]) -> BhCurve {
    let mut model = JilesAtherton::with_config(params, config).expect("valid material");
    model.run_samples(samples).expect("scalar sweep")
}

fn assert_curves_bit_identical(soa: &BhCurve, scalar: &BhCurve, label: &str) {
    assert_eq!(soa.len(), scalar.len(), "{label}: sample count");
    for (i, (p, q)) in soa.points().iter().zip(scalar.points()).enumerate() {
        assert_eq!(
            p.h.value().to_bits(),
            q.h.value().to_bits(),
            "{label}: H at sample {i}"
        );
        assert_eq!(
            p.b.as_tesla().to_bits(),
            q.b.as_tesla().to_bits(),
            "{label}: B at sample {i}"
        );
        assert_eq!(
            p.m.value().to_bits(),
            q.m.value().to_bits(),
            "{label}: M at sample {i}"
        );
    }
}

fn arbitrary_material() -> impl Strategy<Value = JaParameters> {
    (
        5.0e5_f64..2.0e6,    // m_sat
        200.0_f64..5_000.0,  // a
        500.0_f64..20_000.0, // k
        1.0e-4_f64..5.0e-3,  // alpha
        0.01_f64..0.8,       // c
    )
        .prop_map(|(m_sat, a, k, alpha, c)| {
            JaParameters::builder()
                .m_sat(Magnetisation::new(m_sat))
                .a(a)
                .a2(a * 1.75)
                .k(k)
                .alpha(alpha)
                .c(c)
                .build()
                .expect("generated parameters are in range")
        })
}

/// Every anhysteretic law: the two arctangent laws run the lockstep
/// kernel, the classic Langevin runs the per-lane fallback.
const LAWS: [AnhystereticChoice; 3] = [
    AnhystereticChoice::ModifiedLangevin,
    AnhystereticChoice::DoubleArctan,
    AnhystereticChoice::Langevin,
];

/// The excitation shapes the workspace exercises everywhere: the paper's
/// Fig. 1 double cycle, a plain major loop, and a biased minor loop.
fn schedule(kind: usize, peak: f64, step: f64) -> FieldSchedule {
    match kind {
        0 => FieldSchedule::major_loop(peak, step, 2).expect("schedule"),
        1 => FieldSchedule::nested_minor_loops(peak, &[peak / 2.0, peak / 5.0], step)
            .expect("schedule"),
        _ => FieldSchedule::biased_minor_loop(peak / 4.0, peak / 8.0, 2, step).expect("schedule"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// f64 lanes are bitwise equal to the scalar model, for random
    /// materials, every anhysteretic law and every schedule shape.
    #[test]
    fn f64_lanes_are_bit_identical_to_scalar(
        materials in proptest::collection::vec(arbitrary_material(), 2..6),
        law in 0usize..3,
        kind in 0usize..3,
        peak in 2_000.0_f64..30_000.0,
        step in 25.0_f64..250.0,
    ) {
        let config = JaConfig::default().with_anhysteretic(LAWS[law]);
        let samples = schedule(kind, peak, step).to_samples();

        let mut batch = SoaBatch::new(config, SoaPrecision::F64).expect("config");
        batch.assign(&materials);
        let mut curves = vec![BhCurve::new(); materials.len()];
        batch.run_samples_into_curves(&samples, &mut curves);

        for (lane, (params, curve)) in materials.iter().zip(&curves).enumerate() {
            prop_assert!(batch.lane_error(lane).is_none());
            let scalar = scalar_curve(*params, config, &samples);
            assert_curves_bit_identical(curve, &scalar, &format!("lane {lane} law {law} kind {kind}"));
        }
    }
}

#[test]
fn f32_state_mode_stays_within_documented_tolerance() {
    // The documented bound (see `ja_hysteresis::soa`): relative B error
    // below 1e-4 of the loop's peak flux density, for the workspace's
    // materials and schedules.
    let materials = [
        JaParameters::date2006(),
        JaParameters::jiles_atherton_1984(),
        JaParameters::soft_ferrite(),
        JaParameters::hard_steel(),
    ];
    for kind in 0..3 {
        let samples = schedule(kind, 10_000.0, 50.0).to_samples();
        let config = JaConfig::default();
        let mut batch = SoaBatch::new(config, SoaPrecision::F32).expect("config");
        batch.assign(&materials);
        let mut curves = vec![BhCurve::new(); materials.len()];
        batch.run_samples_into_curves(&samples, &mut curves);

        for (lane, params) in materials.iter().enumerate() {
            assert!(batch.lane_error(lane).is_none());
            let scalar = scalar_curve(*params, config, &samples);
            let b_peak = scalar
                .points()
                .iter()
                .fold(0.0_f64, |acc, p| acc.max(p.b.as_tesla().abs()));
            assert!(b_peak > 0.0);
            let worst = curves[lane]
                .points()
                .iter()
                .zip(scalar.points())
                .fold(0.0_f64, |acc, (p, q)| {
                    acc.max((p.b.as_tesla() - q.b.as_tesla()).abs())
                });
            assert!(
                worst <= 1e-4 * b_peak,
                "lane {lane} kind {kind}: worst |dB| {worst:e} exceeds 1e-4 of peak {b_peak}"
            );
        }
    }
}

#[test]
fn thermally_derived_parameters_stay_bit_identical_in_lockstep() {
    // The operating-point pipeline derives per-temperature parameters with
    // `JaParameters::at_temperature` and hands them to the SoA kernel like
    // any other material: the lanes must stay bitwise equal to a scalar
    // model constructed from the same derived parameters.
    use ja_repro::magnetics::thermal::ThermalCoefficients;

    let thermal = ThermalCoefficients::date2006();
    let materials: Vec<JaParameters> = [-40.0, 25.0, 125.0]
        .iter()
        .map(|&t_c| {
            JaParameters::date2006()
                .at_temperature(t_c, &thermal)
                .expect("temperature is below the Curie point")
        })
        .collect();
    let samples = FieldSchedule::major_loop(10_000.0, 100.0, 2)
        .expect("schedule")
        .to_samples();
    let config = JaConfig::default();

    let mut batch = SoaBatch::new(config, SoaPrecision::F64).expect("config");
    batch.assign(&materials);
    let mut curves = vec![BhCurve::new(); materials.len()];
    batch.run_samples_into_curves(&samples, &mut curves);

    for (lane, (params, curve)) in materials.iter().zip(&curves).enumerate() {
        assert!(batch.lane_error(lane).is_none());
        let scalar = scalar_curve(*params, config, &samples);
        assert_curves_bit_identical(curve, &scalar, &format!("thermal lane {lane}"));
    }
    // And the derivation is not a no-op: the hot lane's loop differs from
    // the cold lane's.
    assert_ne!(
        curves[0]
            .points()
            .iter()
            .map(|p| p.b.as_tesla().to_bits())
            .collect::<Vec<_>>(),
        curves[2]
            .points()
            .iter()
            .map(|p| p.b.as_tesla().to_bits())
            .collect::<Vec<_>>(),
    );
}

#[test]
fn a_failing_lane_does_not_disturb_its_neighbours() {
    let mut bad = JaParameters::date2006();
    bad.k = -1.0;
    let materials = [JaParameters::date2006(), bad, JaParameters::hard_steel()];
    let samples = FieldSchedule::major_loop(10_000.0, 100.0, 2)
        .expect("schedule")
        .to_samples();
    let config = JaConfig::default();

    let mut batch = SoaBatch::new(config, SoaPrecision::F64).expect("config");
    batch.assign(&materials);
    let mut curves = vec![BhCurve::new(); materials.len()];
    batch.run_samples_into_curves(&samples, &mut curves);

    assert!(batch.lane_error(0).is_none());
    assert!(batch.lane_error(1).is_some());
    assert!(batch.lane_error(2).is_none());
    for lane in [0, 2] {
        let scalar = scalar_curve(materials[lane], config, &samples);
        assert_curves_bit_identical(&curves[lane], &scalar, &format!("lane {lane}"));
    }
}
