//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the API subset used by the workspace's bench targets
//! (`Criterion::default().configure_from_args()`, `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`, `finish`,
//! `final_summary`, [`black_box`]) backed by a simple wall-clock timing
//! loop: each benchmark runs `sample_size` samples and reports min / mean /
//! max per-iteration time.  There is no statistical analysis, outlier
//! rejection or report generation.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point of the timing harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: the first free argument (as passed by
    /// `cargo bench -- <filter>`) is used as a substring filter on benchmark
    /// names; harness flags like `--bench` are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        self.filter = filter;
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    /// Prints the closing line of a run (report generation in the real
    /// crate; a no-op marker here).
    pub fn final_summary(&mut self) {
        println!("\nbenchmarks complete (offline criterion stub: wall-clock timing only)");
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(sample_size);
        // One warm-up call outside the measurement.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        for _ in 0..sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
            }
        }
        if samples.is_empty() {
            println!("  {id:<44} (no measurements)");
            return;
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0_f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "  {id:<44} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&id, sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; measures the hot loop.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine` (the real crate runs many
    /// iterations per sample; the stub times a single call per sample).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        criterion.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_apply_sample_size_and_prefix() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function(String::from("inner"), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn format_time_scales_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
