//! Error type shared by the magnetics crate.

use std::error::Error;
use std::fmt;

/// Errors produced by magnetic domain computations.
#[derive(Debug, Clone, PartialEq)]
pub enum MagneticsError {
    /// A Jiles–Atherton or anhysteretic parameter is outside its physical range.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"a"`, `"k"`, `"m_sat"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable requirement the value violated.
        requirement: &'static str,
    },
    /// A geometric quantity (area, path length, turns) is not physical.
    InvalidGeometry {
        /// Name of the offending quantity.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A BH trace did not contain enough samples for the requested analysis.
    InsufficientSamples {
        /// Number of samples required.
        required: usize,
        /// Number of samples available.
        available: usize,
    },
    /// The analysed trace never crossed the level needed for a metric
    /// (for example no `B = 0` crossing when extracting coercivity).
    MissingCrossing {
        /// Description of the crossing that was not found.
        what: &'static str,
    },
    /// A numeric input was NaN or infinite.
    NonFiniteInput {
        /// Name of the offending input.
        name: &'static str,
    },
}

impl fmt::Display for MagneticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagneticsError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}: must satisfy {requirement}"
            ),
            MagneticsError::InvalidGeometry { name, value } => {
                write!(
                    f,
                    "invalid geometry `{name}` = {value}: must be finite and positive"
                )
            }
            MagneticsError::InsufficientSamples {
                required,
                available,
            } => write!(
                f,
                "insufficient samples: analysis requires {required}, trace holds {available}"
            ),
            MagneticsError::MissingCrossing { what } => {
                write!(f, "trace never produced the required crossing: {what}")
            }
            MagneticsError::NonFiniteInput { name } => {
                write!(f, "input `{name}` was NaN or infinite")
            }
        }
    }
}

impl Error for MagneticsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let err = MagneticsError::InvalidParameter {
            name: "a",
            value: -1.0,
            requirement: "a > 0",
        };
        let text = err.to_string();
        assert!(text.contains("`a`"));
        assert!(text.contains("a > 0"));
    }

    #[test]
    fn display_missing_crossing() {
        let err = MagneticsError::MissingCrossing {
            what: "B = 0 on the descending branch",
        };
        assert!(err.to_string().contains("descending branch"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MagneticsError>();
    }

    #[test]
    fn errors_compare_equal() {
        let a = MagneticsError::NonFiniteInput { name: "h" };
        let b = MagneticsError::NonFiniteInput { name: "h" };
        assert_eq!(a, b);
    }
}
