//! Experiment E4: accuracy and stability at the field turning points —
//! timeless discretisation versus the solver-integrated baseline across
//! time-step sizes.

use criterion::{black_box, Criterion};
use hdl_models::ams::{SolverIntegratedBaseline, SolverMethod};
use hdl_models::comparison::turning_point_comparison;
use hdl_models::scenario::{BackendKind, Excitation, Scenario};
use ja_hysteresis::config::JaConfig;
use magnetics::material::JaParameters;
use waveform::triangular::Triangular;

fn print_experiment() {
    println!("== E4: stability at turning points vs solver time step ==");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "dt[s]",
        "timeless Bmax",
        "baseline Bmax",
        "shape err",
        "newton its",
        "non-conv",
        "neg.slope"
    );
    for &dt in &[
        2.0 / 16_000.0,
        2.0 / 8_000.0,
        2.0 / 4_000.0,
        2.0 / 2_000.0,
        2.0 / 1_000.0,
        2.0 / 500.0,
    ] {
        match turning_point_comparison(dt, SolverMethod::BackwardEuler) {
            Ok(r) => println!(
                "{:>10.2e} {:>14.3} {:>14.3} {:>12.4} {:>12} {:>10} {:>10}",
                r.dt,
                r.timeless_b_max,
                r.baseline_b_max,
                r.baseline_shape_error,
                r.baseline_newton_iterations,
                r.baseline_non_converged,
                r.baseline_negative_samples
            ),
            Err(err) => println!("{dt:>10.2e}  baseline failed: {err}"),
        }
    }
    println!(
        "\n(the timeless column is insensitive to dt; the baseline's shape error grows with it)\n"
    );
}

fn benches(c: &mut Criterion) {
    let waveform = Triangular::new(10_000.0, 1.0).expect("waveform");
    let dt = 2.0 / 4_000.0;
    let mut group = c.benchmark_group("turning_points");
    group.sample_size(10);
    let timeless = Scenario::new(
        "turning-point/timeless",
        JaParameters::date2006(),
        JaConfig::default(),
        BackendKind::AmsTimeless,
        Excitation::sampled(&waveform, 2.0, dt).expect("excitation"),
    );
    group.bench_function("timeless_transient", |b| {
        b.iter(|| black_box(timeless.run().expect("run")))
    });
    group.bench_function("baseline_backward_euler", |b| {
        let baseline = SolverIntegratedBaseline::new(JaParameters::date2006(), JaConfig::default())
            .expect("baseline");
        b.iter(|| {
            black_box(
                baseline
                    .run(&waveform, 2.0, dt, SolverMethod::BackwardEuler)
                    .expect("run"),
            )
        })
    });
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
