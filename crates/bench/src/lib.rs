//! Shared helpers for the benchmark / experiment-reproduction harness.
//!
//! Every bench target regenerates one experiment of EXPERIMENTS.md: it first
//! prints the table or series the experiment reports (so `cargo bench`
//! output doubles as the reproduction record), then runs the Criterion
//! measurements of the code paths involved.

use hdl_models::scenario::ScenarioOutcome;
use magnetics::loop_analysis::LoopMetrics;

/// Prints a loop-metrics row in the fixed-width format shared by the
/// experiment tables.
pub fn print_metrics_row(label: &str, metrics: &LoopMetrics) {
    println!(
        "{label:<28} {:>8.3} {:>10.1} {:>8.0} {:>10.3} {:>12.0} {:>10}",
        metrics.b_max.as_tesla(),
        metrics.h_max.as_kiloamperes_per_meter(),
        metrics.coercivity.value(),
        metrics.remanence.as_tesla(),
        metrics.loop_area,
        metrics.negative_slope_samples
    );
}

/// Prints the header matching [`print_metrics_row`].
pub fn print_metrics_header() {
    println!(
        "{:<28} {:>8} {:>10} {:>8} {:>10} {:>12} {:>10}",
        "case", "Bmax[T]", "Hmax[kA/m]", "Hc[A/m]", "Br[T]", "area[J/m3]", "neg.slope"
    );
}

/// Prints a scenario outcome as a metrics row labelled with its backend,
/// followed by the run cost (samples, updates, wall-clock).
pub fn print_outcome_row(outcome: &ScenarioOutcome) {
    match &outcome.metrics {
        Some(metrics) => print_metrics_row(outcome.backend.label(), metrics),
        None => println!("{:<28} (no closed loop)", outcome.backend.label()),
    }
    println!(
        "{:<28} {} samples, {} slope updates, {:.3} ms",
        "",
        outcome.stats.samples,
        outcome.stats.updates,
        outcome.runtime.as_secs_f64() * 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::units::{FieldStrength, FluxDensity};

    #[test]
    fn printing_helpers_do_not_panic() {
        let metrics = LoopMetrics {
            b_max: FluxDensity::new(1.7),
            h_max: FieldStrength::new(10_000.0),
            coercivity: FieldStrength::new(3_000.0),
            remanence: FluxDensity::new(1.2),
            loop_area: 60_000.0,
            negative_slope_samples: 0,
        };
        print_metrics_header();
        print_metrics_row("unit-test", &metrics);
    }
}
