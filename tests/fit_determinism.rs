//! Determinism of the multi-start parallel fitting batch: the same jobs
//! with the same seed must produce `FitReport`s that serialise
//! **byte-identically** at 1, 2 and 8 workers — the same contract the
//! scenario batches honour (`tests/batch_determinism.rs`), extended to the
//! fitting workload.  Also asserts the multi-start acceptance property:
//! best-of-N cost is never worse than the single-start cost.

use ja_repro::hdl_models::exec::SoaRouting;
use ja_repro::hdl_models::fit::{fit_batch, FitJob, MultiStartOptions};
use ja_repro::hdl_models::report::fit_report_value;
use ja_repro::ja_hysteresis::backend::HysteresisBackend;
use ja_repro::ja_hysteresis::fitting::FitOptions;
use ja_repro::ja_hysteresis::model::JilesAtherton;
use ja_repro::magnetics::bh::BhCurve;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::schedule::FieldSchedule;

fn measured_loop(params: JaParameters) -> BhCurve {
    let mut model = JilesAtherton::new(params).expect("valid parameters");
    let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 2).expect("schedule");
    model.run_schedule(&schedule).expect("sweep")
}

fn jobs() -> Vec<FitJob> {
    vec![
        FitJob::with_auto_peak("date2006", measured_loop(JaParameters::date2006())),
        FitJob::with_auto_peak("hard-steel", measured_loop(JaParameters::hard_steel())),
    ]
}

fn options(workers: usize) -> MultiStartOptions {
    MultiStartOptions {
        starts: 4,
        seed: 42,
        workers,
        fit: FitOptions {
            passes: 3,
            sweep_step: 200.0,
            ..FitOptions::default()
        },
        ..MultiStartOptions::default()
    }
}

#[test]
fn fit_reports_are_byte_identical_at_1_2_and_8_workers() {
    let reference =
        fit_report_value(&fit_batch(jobs(), &options(1)).expect("fit"), false).to_pretty_string();
    for workers in [2, 8] {
        let report = fit_batch(jobs(), &options(workers)).expect("fit");
        let serialised = fit_report_value(&report, false).to_pretty_string();
        assert_eq!(
            reference, serialised,
            "fit report at {workers} workers differs from the 1-worker run"
        );
    }
    // The timing block is the one worker-dependent part, and it is opt-in.
    let timed =
        fit_report_value(&fit_batch(jobs(), &options(2)).expect("fit"), true).to_pretty_string();
    assert!(timed.contains("\"timing\""));
    assert!(!reference.contains("\"timing\""));
    assert!(!reference.contains("_ns"));
}

#[test]
fn fit_reports_are_byte_identical_across_scalar_and_soa_routing() {
    // Candidate-evaluation routing is a scheduling decision, not a result
    // decision: the SoA f64 lanes are bit-identical to scalar evaluation,
    // so the default report must not change — across routings AND worker
    // counts at once.
    let reference = fit_report_value(
        &fit_batch(
            jobs(),
            &MultiStartOptions {
                routing: SoaRouting::ForceScalar,
                ..options(1)
            },
        )
        .expect("fit"),
        false,
    )
    .to_pretty_string();
    for routing in [SoaRouting::ForceSoa, SoaRouting::Auto] {
        for workers in [1, 2, 8] {
            let report = fit_batch(
                jobs(),
                &MultiStartOptions {
                    routing,
                    ..options(workers)
                },
            )
            .expect("fit");
            assert_eq!(report.lockstep_lanes, Some(4));
            let serialised = fit_report_value(&report, false).to_pretty_string();
            assert_eq!(
                reference, serialised,
                "{routing:?} report at {workers} workers differs from the scalar run"
            );
            assert!(!serialised.contains("backend_routing"));
        }
    }
    // The routing marker rides with the opt-in timing block only.
    let timed =
        fit_report_value(&fit_batch(jobs(), &options(2)).expect("fit"), true).to_pretty_string();
    assert!(timed.contains("\"backend_routing\": \"soa\""));
    assert!(timed.contains("\"lockstep_lanes\": 4"));
}

#[test]
fn best_of_n_is_never_worse_than_the_single_start() {
    let single = fit_batch(
        jobs(),
        &MultiStartOptions {
            starts: 1,
            ..options(0)
        },
    )
    .expect("fit");
    let multi = fit_batch(jobs(), &options(0)).expect("fit");
    for (single_loop, multi_loop) in single.loops.iter().zip(&multi.loops) {
        let single_cost = single_loop.best_fit().expect("single start succeeds").cost;
        let multi_best = multi_loop.best_fit().expect("some start succeeds");
        // Start 0 of the multi-start run is exactly the single-start run.
        let start0 = multi_loop.starts[0].result.as_ref().expect("start 0 runs");
        assert_eq!(start0.cost.to_bits(), single_cost.to_bits());
        assert!(
            multi_best.cost <= single_cost,
            "{}: best-of-{} cost {} worse than single-start {}",
            multi_loop.name,
            multi.starts,
            multi_best.cost,
            single_cost
        );
    }
}
