//! Jiles–Atherton material parameter sets.
//!
//! The five classic JA parameters plus the paper's extra `a2`:
//!
//! | symbol | meaning | unit |
//! |--------|---------|------|
//! | `M_sat` | saturation magnetisation | A/m |
//! | `a`     | anhysteretic shape parameter | A/m |
//! | `a2`    | secondary shape parameter (paper's modification) | A/m |
//! | `k`     | pinning-site / coercivity parameter | A/m |
//! | `α`     | inter-domain coupling | — |
//! | `c`     | reversible-magnetisation ratio | — |
//!
//! [`JaParameters::date2006`] reproduces the exact set quoted by the paper.

use crate::anhysteretic::{AnhystereticKind, DoubleArctan, Langevin, ModifiedLangevin};
use crate::constants::MU0;
use crate::error::MagneticsError;
use crate::units::{FluxDensity, Magnetisation};

/// A validated Jiles–Atherton material parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaParameters {
    /// Saturation magnetisation `M_sat` (A/m).
    pub m_sat: Magnetisation,
    /// Anhysteretic shape parameter `a` (A/m).
    pub a: f64,
    /// Secondary anhysteretic shape parameter `a2` (A/m); the paper lists
    /// `a2 = 3500 A/m` next to `a = 2000 A/m`.
    pub a2: f64,
    /// Pinning parameter `k` (A/m); sets the coercive field scale.
    pub k: f64,
    /// Inter-domain coupling `α` (dimensionless).
    pub alpha: f64,
    /// Reversible magnetisation ratio `c` (dimensionless, `0 ≤ c < 1` in
    /// practice; the model only requires `c ≥ 0`).
    pub c: f64,
}

impl JaParameters {
    /// Validates and constructs a parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidParameter`] if any value is
    /// non-finite, `m_sat`, `a`, `a2` or `k` is not strictly positive,
    /// `alpha` is negative, or `c` is negative.
    pub fn new(
        m_sat: Magnetisation,
        a: f64,
        a2: f64,
        k: f64,
        alpha: f64,
        c: f64,
    ) -> Result<Self, MagneticsError> {
        let candidate = Self {
            m_sat,
            a,
            a2,
            k,
            alpha,
            c,
        };
        candidate.validate()?;
        Ok(candidate)
    }

    /// The exact parameter set used by the paper (section 2):
    /// `k = 4000 A/m`, `c = 0.1`, `M_sat = 1.6 MA/m`, `α = 0.003`,
    /// `a = 2000 A/m`, `a2 = 3500 A/m`.
    pub fn date2006() -> Self {
        Self {
            m_sat: Magnetisation::from_megaamperes_per_meter(1.6),
            a: 2000.0,
            a2: 3500.0,
            k: 4000.0,
            alpha: 0.003,
            c: 0.1,
        }
    }

    /// The parameter set of the original Jiles–Atherton 1984 paper, as
    /// commonly quoted for annealed iron (`α = 1.6e-3`).  Included as an
    /// alternative material for the examples and ablation benches.
    pub fn jiles_atherton_1984() -> Self {
        Self {
            m_sat: Magnetisation::from_megaamperes_per_meter(1.7),
            a: 1100.0,
            a2: 1100.0,
            k: 400.0,
            alpha: 1.6e-3,
            c: 0.2,
        }
    }

    /// A soft-ferrite-like material: low coercivity, low saturation.
    /// Useful for exercising the models on a very different loop shape.
    pub fn soft_ferrite() -> Self {
        Self {
            m_sat: Magnetisation::new(3.8e5),
            a: 25.0,
            a2: 40.0,
            k: 12.0,
            alpha: 8.0e-6,
            c: 0.55,
        }
    }

    /// A hard-magnetic-like material with a wide loop (large `k`).
    pub fn hard_steel() -> Self {
        Self {
            m_sat: Magnetisation::from_megaamperes_per_meter(1.2),
            a: 5000.0,
            a2: 7000.0,
            k: 15_000.0,
            alpha: 0.01,
            c: 0.05,
        }
    }

    /// Builder with the paper's values as the starting point.
    pub fn builder() -> JaParametersBuilder {
        JaParametersBuilder::new()
    }

    /// Re-validates the parameter set (useful after manual field edits).
    ///
    /// # Errors
    ///
    /// Same conditions as [`JaParameters::new`].
    pub fn validate(&self) -> Result<(), MagneticsError> {
        check_positive("m_sat", self.m_sat.value())?;
        check_positive("a", self.a)?;
        check_positive("a2", self.a2)?;
        check_positive("k", self.k)?;
        check_non_negative("alpha", self.alpha)?;
        check_non_negative("c", self.c)?;
        Ok(())
    }

    /// Saturation flux density `B_sat = µ0 · M_sat` (the applied field's own
    /// contribution excluded).  For the paper's material this is ≈ 2.01 T,
    /// matching the vertical extent of Fig. 1.
    pub fn saturation_flux_density(&self) -> FluxDensity {
        FluxDensity::new(MU0 * self.m_sat.value())
    }

    /// The classic Langevin anhysteretic built from `a`.
    ///
    /// # Panics
    ///
    /// Never panics: `a` was validated at construction.
    pub fn langevin(&self) -> Langevin {
        Langevin::new(self.a).expect("validated parameter")
    }

    /// The paper's modified (arctangent) anhysteretic built from `a`.
    pub fn modified_langevin(&self) -> ModifiedLangevin {
        ModifiedLangevin::new(self.a).expect("validated parameter")
    }

    /// The two-parameter arctangent blend built from `a` and `a2` with an
    /// even weight.
    pub fn double_arctan(&self) -> DoubleArctan {
        DoubleArctan::new(self.a, self.a2, 0.5).expect("validated parameters")
    }

    /// The default anhysteretic for this material: the paper's modified
    /// Langevin.
    pub fn default_anhysteretic(&self) -> AnhystereticKind {
        self.modified_langevin().into()
    }
}

impl Default for JaParameters {
    fn default() -> Self {
        Self::date2006()
    }
}

/// Builder for [`JaParameters`] (C-BUILDER).  Starts from the paper's values
/// so callers only need to override what differs.
#[derive(Debug, Clone, Copy)]
pub struct JaParametersBuilder {
    params: JaParameters,
}

impl JaParametersBuilder {
    /// Starts a builder seeded with the paper's parameter set.
    pub fn new() -> Self {
        Self {
            params: JaParameters::date2006(),
        }
    }

    /// Sets the saturation magnetisation (A/m).
    pub fn m_sat(mut self, m_sat: Magnetisation) -> Self {
        self.params.m_sat = m_sat;
        self
    }

    /// Sets the anhysteretic shape parameter `a` (A/m).
    pub fn a(mut self, a: f64) -> Self {
        self.params.a = a;
        self
    }

    /// Sets the secondary shape parameter `a2` (A/m).
    pub fn a2(mut self, a2: f64) -> Self {
        self.params.a2 = a2;
        self
    }

    /// Sets the pinning parameter `k` (A/m).
    pub fn k(mut self, k: f64) -> Self {
        self.params.k = k;
        self
    }

    /// Sets the inter-domain coupling `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.params.alpha = alpha;
        self
    }

    /// Sets the reversible ratio `c`.
    pub fn c(mut self, c: f64) -> Self {
        self.params.c = c;
        self
    }

    /// Validates and returns the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`MagneticsError::InvalidParameter`] under the same conditions
    /// as [`JaParameters::new`].
    pub fn build(self) -> Result<JaParameters, MagneticsError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

impl Default for JaParametersBuilder {
    fn default() -> Self {
        Self::new()
    }
}

fn check_positive(name: &'static str, value: f64) -> Result<(), MagneticsError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(MagneticsError::InvalidParameter {
            name,
            value,
            requirement: "finite and > 0",
        });
    }
    Ok(())
}

fn check_non_negative(name: &'static str, value: f64) -> Result<(), MagneticsError> {
    if !value.is_finite() || value < 0.0 {
        return Err(MagneticsError::InvalidParameter {
            name,
            value,
            requirement: "finite and >= 0",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anhysteretic::Anhysteretic;

    #[test]
    fn date2006_matches_paper_values() {
        let p = JaParameters::date2006();
        assert_eq!(p.k, 4000.0);
        assert_eq!(p.c, 0.1);
        assert_eq!(p.m_sat.value(), 1.6e6);
        assert_eq!(p.alpha, 0.003);
        assert_eq!(p.a, 2000.0);
        assert_eq!(p.a2, 3500.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn saturation_flux_density_about_two_tesla() {
        let b = JaParameters::date2006().saturation_flux_density();
        assert!(b.as_tesla() > 1.9 && b.as_tesla() < 2.1);
    }

    #[test]
    fn presets_all_validate() {
        for p in [
            JaParameters::date2006(),
            JaParameters::jiles_atherton_1984(),
            JaParameters::soft_ferrite(),
            JaParameters::hard_steel(),
        ] {
            assert!(p.validate().is_ok(), "{p:?}");
        }
    }

    #[test]
    fn new_rejects_negative_k() {
        let err = JaParameters::new(Magnetisation::new(1.6e6), 2000.0, 3500.0, -1.0, 0.003, 0.1)
            .unwrap_err();
        assert!(matches!(
            err,
            MagneticsError::InvalidParameter { name: "k", .. }
        ));
    }

    #[test]
    fn new_rejects_nan_alpha() {
        let err = JaParameters::new(
            Magnetisation::new(1.6e6),
            2000.0,
            3500.0,
            4000.0,
            f64::NAN,
            0.1,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MagneticsError::InvalidParameter { name: "alpha", .. }
        ));
    }

    #[test]
    fn new_rejects_zero_m_sat() {
        let err = JaParameters::new(Magnetisation::zero(), 2000.0, 3500.0, 4000.0, 0.003, 0.1)
            .unwrap_err();
        assert!(matches!(
            err,
            MagneticsError::InvalidParameter { name: "m_sat", .. }
        ));
    }

    #[test]
    fn builder_overrides_single_field() {
        let p = JaParameters::builder().k(5000.0).build().unwrap();
        assert_eq!(p.k, 5000.0);
        assert_eq!(p.a, 2000.0);
    }

    #[test]
    fn builder_propagates_validation_error() {
        assert!(JaParameters::builder().c(-0.5).build().is_err());
    }

    #[test]
    fn default_is_paper_set() {
        assert_eq!(JaParameters::default(), JaParameters::date2006());
    }

    #[test]
    fn anhysteretic_constructors_work() {
        let p = JaParameters::date2006();
        let he = 3000.0;
        assert!(p.langevin().normalised(he) > 0.0);
        assert!(p.modified_langevin().normalised(he) > 0.0);
        assert!(p.double_arctan().normalised(he) > 0.0);
        assert!(p.default_anhysteretic().normalised(he) > 0.0);
    }

    #[test]
    fn validate_catches_manual_edit() {
        let mut p = JaParameters::date2006();
        p.a = f64::INFINITY;
        assert!(p.validate().is_err());
    }
}
