//! Magnetic domain substrate for the timeless Jiles–Atherton reproduction.
//!
//! This crate provides everything the hysteresis models need that is *not*
//! specific to the timeless-discretisation technique itself:
//!
//! * strongly typed magnetic quantities ([`units`]): field strength,
//!   magnetisation, flux density, flux, permeability;
//! * physical [`constants`] (µ0 and friends);
//! * anhysteretic magnetisation functions ([`anhysteretic`]): the classic
//!   Langevin function and the modified (arctangent) form used by the paper,
//!   plus a two-parameter variant for the `a2` parameter the paper mentions;
//! * branch-light polynomial math ([`fastmath`]): the inlineable
//!   arctangent the arctangent laws evaluate, shared by the scalar and
//!   lockstep (SoA) execution paths so both stay bit-identical;
//! * Jiles–Atherton material parameter sets ([`material`]) with validation
//!   and presets, including the exact parameter set of the paper, and
//!   their temperature dependence ([`thermal`]): Curie-law saturation
//!   scaling plus linear `k`/`a` drift for operating-point studies;
//! * BH-curve containers ([`bh`]) and loop analysis ([`loop_analysis`]):
//!   coercivity, remanence, saturation, loop area / hysteresis loss,
//!   branch splitting and loop-closure checks;
//! * magnetic core geometry ([`geometry`]): toroids and generic cores,
//!   ampere-turns to field strength, flux to flux density, winding helpers.
//!
//! # Example
//!
//! ```
//! use magnetics::material::JaParameters;
//! use magnetics::anhysteretic::{Anhysteretic, ModifiedLangevin};
//! use magnetics::units::FieldStrength;
//!
//! # fn main() -> Result<(), magnetics::MagneticsError> {
//! let params = JaParameters::date2006();
//! let man = ModifiedLangevin::new(params.a)?;
//! let m = man.magnetisation(FieldStrength::new(4000.0), params.m_sat);
//! assert!(m.as_amperes_per_meter() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anhysteretic;
pub mod bh;
pub mod constants;
pub mod error;
pub mod fastmath;
pub mod geometry;
pub mod loop_analysis;
pub mod losses;
pub mod material;
pub mod thermal;
pub mod units;

pub use error::MagneticsError;
