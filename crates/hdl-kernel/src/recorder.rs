//! Signal recording for post-simulation analysis.

use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::signal::SignalId;
use crate::time::SimTime;
use crate::value::Value;

/// Records the values of a chosen set of signals every time
/// [`Recorder::sample`] is called, along with the simulation time.
///
/// This plays the role of SystemC's `sc_trace`/VCD output: the testbench
/// samples after each stimulus step and the recorded series become the BH
/// curves compared in the experiments.
///
/// Storage is one flat column per channel (not one row `Vec` per sample),
/// so a sample is a push per channel — no per-sample allocation once the
/// columns have grown to the stimulus length.
#[derive(Debug, Clone)]
pub struct Recorder {
    labels: Vec<String>,
    signals: Vec<SignalId>,
    times: Vec<SimTime>,
    columns: Vec<Vec<Value>>,
}

impl Recorder {
    /// Creates a recorder for the given `(label, signal)` pairs.
    pub fn new(channels: Vec<(String, SignalId)>) -> Self {
        let (labels, signals): (Vec<_>, Vec<_>) = channels.into_iter().unzip();
        let columns = signals.iter().map(|_| Vec::new()).collect();
        Self {
            labels,
            signals,
            times: Vec::new(),
            columns,
        }
    }

    /// Convenience constructor from `&str` labels.
    pub fn with_channels(channels: &[(&str, SignalId)]) -> Self {
        Self::with_channel_capacity(channels, 0)
    }

    /// Like [`Recorder::with_channels`], but preallocates room for
    /// `samples` calls to [`Recorder::sample`] — testbenches that know their
    /// stimulus length up front record without reallocating.
    pub fn with_channel_capacity(channels: &[(&str, SignalId)], samples: usize) -> Self {
        let mut recorder = Self::new(
            channels
                .iter()
                .map(|(name, id)| ((*name).to_owned(), *id))
                .collect(),
        );
        recorder.times.reserve(samples);
        for column in &mut recorder.columns {
            column.reserve(samples);
        }
        recorder
    }

    /// Samples every channel from the kernel's current state.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] if a channel refers to a
    /// signal the kernel does not know.
    pub fn sample(&mut self, kernel: &Kernel) -> Result<(), KernelError> {
        // Validate every channel before touching the columns, so a failed
        // sample leaves the recorder unchanged (no torn row).
        for &id in &self.signals {
            kernel.read(id)?;
        }
        for (column, &id) in self.columns.iter_mut().zip(&self.signals) {
            column.push(kernel.read(id)?);
        }
        self.times.push(kernel.now());
        Ok(())
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Channel labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The sampled times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Extracts one channel as a real-valued series.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::TypeMismatch`] if the channel holds
    /// non-real values, or [`KernelError::UnknownSignal`] if the label does
    /// not exist.
    pub fn real_series(&self, label: &str) -> Result<Vec<f64>, KernelError> {
        let idx =
            self.labels
                .iter()
                .position(|l| l == label)
                .ok_or(KernelError::UnknownSignal {
                    id: SignalId(usize::MAX),
                })?;
        self.columns[idx].iter().map(Value::as_real).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;

    #[test]
    fn records_series_over_time() {
        let mut k = Kernel::new();
        let h = k.add_signal("h", Value::Real(0.0));
        let b = k.add_signal("b", Value::Real(0.0));
        k.add_process("gain", &[h], move |ctx| {
            let x = ctx.read_real(h)?;
            ctx.write_real(b, 3.0 * x)
        })
        .unwrap();

        let mut rec = Recorder::with_channels(&[("H", h), ("B", b)]);
        k.settle().unwrap();
        rec.sample(&k).unwrap();
        for i in 1..=3 {
            k.write_initial(h, Value::Real(i as f64)).unwrap();
            k.settle().unwrap();
            rec.sample(&k).unwrap();
        }
        assert_eq!(rec.len(), 4);
        assert!(!rec.is_empty());
        assert_eq!(rec.labels(), &["H".to_string(), "B".to_string()]);
        assert_eq!(rec.real_series("B").unwrap(), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(rec.times().len(), 4);
    }

    #[test]
    fn with_channel_capacity_records_normally() {
        let mut k = Kernel::new();
        let h = k.add_signal("h", Value::Real(1.5));
        let mut rec = Recorder::with_channel_capacity(&[("H", h)], 8);
        k.settle().unwrap();
        rec.sample(&k).unwrap();
        assert_eq!(rec.real_series("H").unwrap(), vec![1.5]);
    }

    #[test]
    fn unknown_label_rejected() {
        let rec = Recorder::with_channels(&[]);
        assert!(rec.real_series("nope").is_err());
    }

    #[test]
    fn foreign_signal_leaves_recorder_unchanged() {
        let mut k = Kernel::new();
        let h = k.add_signal("h", Value::Real(1.0));
        let foreign = SignalId(42);
        let mut rec = Recorder::new(vec![("H".to_owned(), h), ("X".to_owned(), foreign)]);
        k.settle().unwrap();
        assert!(rec.sample(&k).is_err());
        assert!(rec.is_empty(), "failed sample must not leave a torn row");
        assert!(rec.real_series("H").unwrap().is_empty());
    }

    #[test]
    fn type_mismatch_reported() {
        let mut k = Kernel::new();
        let flag = k.add_signal("flag", Value::Bit(false));
        let mut rec = Recorder::with_channels(&[("flag", flag)]);
        k.settle().unwrap();
        rec.sample(&k).unwrap();
        assert!(rec.real_series("flag").is_err());
    }
}
