//! Field schedules for timeless (DC-sweep) simulations.
//!
//! The paper's central idea is that the magnetisation slope is integrated
//! against the *field* `H`, not against time.  A [`FieldSchedule`] captures
//! exactly the information such a simulation needs: the ordered sequence of
//! field values the excitation passes through, with no timestamps at all.
//!
//! A schedule is described by its reversal points (breakpoints) and a step
//! size; iterating it walks linearly from each breakpoint to the next in
//! increments of the step.  Ready-made constructors build the excitations
//! used in the paper's evaluation:
//!
//! * [`FieldSchedule::major_loop`] — the plain triangular DC sweep;
//! * [`FieldSchedule::nested_minor_loops`] — a major sweep followed by
//!   progressively smaller non-biased (origin-centred) loops, the Fig. 1
//!   stimulus;
//! * [`FieldSchedule::biased_minor_loop`] — a small loop around an arbitrary
//!   bias point ("various minor loop sizes and in different positions");
//! * [`FieldSchedule::demagnetisation`] — decaying loop amplitudes.

use crate::error::WaveformError;

/// An ordered, time-free sequence of applied-field values.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSchedule {
    start: f64,
    breakpoints: Vec<f64>,
    step: f64,
}

impl FieldSchedule {
    /// Creates a schedule from a starting field, the successive reversal
    /// targets and the field step used to walk between them (A/m).
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when the step is not
    /// finite and strictly positive, or any breakpoint is not finite, or no
    /// breakpoints are given.
    pub fn new(start: f64, breakpoints: Vec<f64>, step: f64) -> Result<Self, WaveformError> {
        if !step.is_finite() || step <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "step",
                value: step,
                requirement: "finite and > 0",
            });
        }
        if !start.is_finite() {
            return Err(WaveformError::InvalidParameter {
                name: "start",
                value: start,
                requirement: "finite",
            });
        }
        if breakpoints.is_empty() {
            return Err(WaveformError::InvalidParameter {
                name: "breakpoints",
                value: 0.0,
                requirement: "at least one reversal target",
            });
        }
        if let Some(&bad) = breakpoints.iter().find(|b| !b.is_finite()) {
            return Err(WaveformError::InvalidParameter {
                name: "breakpoints",
                value: bad,
                requirement: "all finite",
            });
        }
        Ok(Self {
            start,
            breakpoints,
            step,
        })
    }

    /// A plain triangular DC sweep: starting from zero field, `cycles` full
    /// excursions `0 → +H_peak → −H_peak → +H_peak → …`, ending back at
    /// `+H_peak` of the last cycle.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when `h_peak` is not
    /// finite and positive, `step` is invalid, or `cycles` is zero.
    pub fn major_loop(h_peak: f64, step: f64, cycles: usize) -> Result<Self, WaveformError> {
        if !h_peak.is_finite() || h_peak <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "h_peak",
                value: h_peak,
                requirement: "finite and > 0",
            });
        }
        if cycles == 0 {
            return Err(WaveformError::InvalidParameter {
                name: "cycles",
                value: 0.0,
                requirement: ">= 1",
            });
        }
        let mut breakpoints = Vec::with_capacity(cycles * 2 + 1);
        breakpoints.push(h_peak);
        for _ in 0..cycles {
            breakpoints.push(-h_peak);
            breakpoints.push(h_peak);
        }
        Self::new(0.0, breakpoints, step)
    }

    /// The Fig. 1 stimulus: a full major sweep followed by non-biased
    /// (origin-centred) minor loops at each of the given amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when `h_peak` or any
    /// minor amplitude is not finite and positive, an amplitude exceeds
    /// `h_peak`, or `step` is invalid.
    pub fn nested_minor_loops(
        h_peak: f64,
        minor_amplitudes: &[f64],
        step: f64,
    ) -> Result<Self, WaveformError> {
        if !h_peak.is_finite() || h_peak <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "h_peak",
                value: h_peak,
                requirement: "finite and > 0",
            });
        }
        for &a in minor_amplitudes {
            if !a.is_finite() || a <= 0.0 || a > h_peak {
                return Err(WaveformError::InvalidParameter {
                    name: "minor_amplitudes",
                    value: a,
                    requirement: "finite, > 0 and <= h_peak",
                });
            }
        }
        // Major loop first (stabilises the trajectory on the outer loop),
        // then one full non-biased cycle per minor amplitude.
        let mut breakpoints = vec![h_peak, -h_peak, h_peak];
        for &a in minor_amplitudes {
            breakpoints.push(-a);
            breakpoints.push(a);
        }
        Self::new(0.0, breakpoints, step)
    }

    /// A minor loop of amplitude `amplitude` centred on `bias`, repeated
    /// `cycles` times, approached from zero field.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when the amplitude is not
    /// finite and positive, the bias is not finite, `cycles` is zero, or
    /// `step` is invalid.
    pub fn biased_minor_loop(
        bias: f64,
        amplitude: f64,
        cycles: usize,
        step: f64,
    ) -> Result<Self, WaveformError> {
        if !bias.is_finite() {
            return Err(WaveformError::InvalidParameter {
                name: "bias",
                value: bias,
                requirement: "finite",
            });
        }
        if !amplitude.is_finite() || amplitude <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "amplitude",
                value: amplitude,
                requirement: "finite and > 0",
            });
        }
        if cycles == 0 {
            return Err(WaveformError::InvalidParameter {
                name: "cycles",
                value: 0.0,
                requirement: ">= 1",
            });
        }
        let mut breakpoints = Vec::with_capacity(cycles * 2 + 1);
        breakpoints.push(bias + amplitude);
        for _ in 0..cycles {
            breakpoints.push(bias - amplitude);
            breakpoints.push(bias + amplitude);
        }
        Self::new(0.0, breakpoints, step)
    }

    /// A demagnetisation schedule: loops whose amplitude decays geometrically
    /// from `h_start` by `decay` per half-cycle until it falls below
    /// `h_stop`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when the amplitudes are
    /// not positive and ordered (`h_stop < h_start`), the decay factor is not
    /// in `(0, 1)`, or `step` is invalid.
    pub fn demagnetisation(
        h_start: f64,
        h_stop: f64,
        decay: f64,
        step: f64,
    ) -> Result<Self, WaveformError> {
        if !h_start.is_finite() || h_start <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "h_start",
                value: h_start,
                requirement: "finite and > 0",
            });
        }
        if !h_stop.is_finite() || h_stop <= 0.0 || h_stop >= h_start {
            return Err(WaveformError::InvalidParameter {
                name: "h_stop",
                value: h_stop,
                requirement: "finite, > 0 and < h_start",
            });
        }
        if !(0.0..1.0).contains(&decay) || decay == 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "decay",
                value: decay,
                requirement: "in (0, 1)",
            });
        }
        let mut breakpoints = Vec::new();
        let mut amplitude = h_start;
        let mut sign = 1.0;
        while amplitude >= h_stop {
            breakpoints.push(sign * amplitude);
            sign = -sign;
            amplitude *= decay;
        }
        breakpoints.push(0.0);
        Self::new(0.0, breakpoints, step)
    }

    /// The starting field value.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// The reversal targets.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// The field step between successive samples.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Total number of samples the iterator will yield (including the
    /// starting sample).
    pub fn len(&self) -> usize {
        let mut n = 1usize;
        let mut from = self.start;
        for &to in &self.breakpoints {
            n += segment_steps(from, to, self.step);
            from = to;
        }
        n
    }

    /// `true` when the schedule yields only the starting sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over the field samples.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            schedule: self,
            segment: 0,
            segment_from: self.start,
            steps_in_segment: self
                .breakpoints
                .first()
                .map_or(0, |&to| segment_steps(self.start, to, self.step)),
            step_done: 0,
            emitted_start: false,
            remaining: self.len(),
        }
    }

    /// Collects the schedule into a vector of field samples.
    pub fn to_samples(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Peak absolute field value the schedule reaches.
    pub fn peak(&self) -> f64 {
        self.breakpoints
            .iter()
            .map(|b| b.abs())
            .fold(self.start.abs(), f64::max)
    }
}

fn segment_steps(from: f64, to: f64, step: f64) -> usize {
    ((to - from).abs() / step).ceil() as usize
}

/// Iterator over the field samples of a [`FieldSchedule`].
///
/// Each segment emits exactly `segment_steps(from, to, step)` samples —
/// the same count [`FieldSchedule::len`] sums — computed as
/// `from + i · step` with the final sample clamped to the breakpoint, so
/// the iterator is an exact [`ExactSizeIterator`] by construction (no
/// float-accumulation drift deciding when a segment ends) and every
/// breakpoint is hit bit-exactly.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    schedule: &'a FieldSchedule,
    segment: usize,
    segment_from: f64,
    steps_in_segment: usize,
    step_done: usize,
    emitted_start: bool,
    remaining: usize,
}

impl Iterator for Iter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if !self.emitted_start {
            self.emitted_start = true;
            self.remaining = self.remaining.saturating_sub(1);
            return Some(self.segment_from);
        }
        loop {
            let target = *self.schedule.breakpoints.get(self.segment)?;
            if self.step_done >= self.steps_in_segment {
                // Segment finished (or empty): advance to the next one.
                self.segment_from = target;
                self.segment += 1;
                let next_target = *self.schedule.breakpoints.get(self.segment)?;
                self.steps_in_segment =
                    segment_steps(self.segment_from, next_target, self.schedule.step);
                self.step_done = 0;
                continue;
            }
            self.step_done += 1;
            self.remaining = self.remaining.saturating_sub(1);
            let value = if self.step_done == self.steps_in_segment {
                target
            } else {
                let direction = (target - self.segment_from).signum();
                self.segment_from + direction * self.step_done as f64 * self.schedule.step
            };
            return Some(value);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a FieldSchedule {
    type Item = f64;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(FieldSchedule::new(0.0, vec![100.0], 0.0).is_err());
        assert!(FieldSchedule::new(0.0, vec![], 1.0).is_err());
        assert!(FieldSchedule::new(f64::NAN, vec![100.0], 1.0).is_err());
        assert!(FieldSchedule::new(0.0, vec![f64::INFINITY], 1.0).is_err());
        assert!(FieldSchedule::major_loop(0.0, 1.0, 1).is_err());
        assert!(FieldSchedule::major_loop(100.0, 1.0, 0).is_err());
    }

    #[test]
    fn simple_ramp_hits_every_step() {
        let s = FieldSchedule::new(0.0, vec![5.0], 1.0).unwrap();
        assert_eq!(s.to_samples(), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn non_divisible_step_clamps_to_breakpoint() {
        let s = FieldSchedule::new(0.0, vec![2.5], 1.0).unwrap();
        let samples = s.to_samples();
        assert_eq!(samples.last().copied().unwrap(), 2.5);
        assert_eq!(samples.len(), 4); // 0, 1, 2, 2.5
    }

    #[test]
    fn major_loop_reaches_both_peaks() {
        let s = FieldSchedule::major_loop(10_000.0, 10.0, 2).unwrap();
        let samples = s.to_samples();
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        assert_eq!(max, 10_000.0);
        assert_eq!(min, -10_000.0);
        assert_eq!(s.peak(), 10_000.0);
        // Iterator length must match len()
        assert_eq!(samples.len(), s.len());
    }

    #[test]
    fn nested_minor_loops_descend_in_amplitude() {
        let s =
            FieldSchedule::nested_minor_loops(10_000.0, &[7500.0, 5000.0, 2500.0], 10.0).unwrap();
        assert_eq!(s.breakpoints().len(), 3 + 6);
        let samples = s.to_samples();
        assert!(samples.iter().all(|h| h.abs() <= 10_000.0));
        // The tail of the schedule must stay within the smallest amplitude.
        let tail = &samples[samples.len() - 10..];
        assert!(tail.iter().all(|h| h.abs() <= 2500.0));
    }

    #[test]
    fn nested_minor_loops_reject_amplitude_above_peak() {
        assert!(FieldSchedule::nested_minor_loops(10_000.0, &[12_000.0], 10.0).is_err());
        assert!(FieldSchedule::nested_minor_loops(10_000.0, &[-1.0], 10.0).is_err());
    }

    #[test]
    fn biased_minor_loop_stays_around_bias() {
        let s = FieldSchedule::biased_minor_loop(5000.0, 1000.0, 2, 10.0).unwrap();
        let samples = s.to_samples();
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        assert_eq!(max, 6000.0);
        assert_eq!(min, 0.0); // approach from zero
        assert!(FieldSchedule::biased_minor_loop(5000.0, 0.0, 2, 10.0).is_err());
        assert!(FieldSchedule::biased_minor_loop(5000.0, 100.0, 0, 10.0).is_err());
    }

    #[test]
    fn demagnetisation_decays_to_zero() {
        let s = FieldSchedule::demagnetisation(10_000.0, 100.0, 0.8, 10.0).unwrap();
        let samples = s.to_samples();
        assert_eq!(*samples.last().unwrap(), 0.0);
        assert!(s.breakpoints().len() > 10);
        assert!(FieldSchedule::demagnetisation(100.0, 10_000.0, 0.8, 10.0).is_err());
        assert!(FieldSchedule::demagnetisation(10_000.0, 100.0, 1.5, 10.0).is_err());
    }

    #[test]
    fn iterator_size_hint_is_exact() {
        let s = FieldSchedule::nested_minor_loops(10_000.0, &[2_500.0], 30.0).unwrap();
        let mut iter = s.iter();
        assert_eq!(iter.len(), s.len());
        let mut seen = 0usize;
        while iter.next().is_some() {
            seen += 1;
            assert_eq!(iter.len(), s.len() - seen);
        }
        assert_eq!(seen, s.len());
        assert_eq!(iter.size_hint(), (0, Some(0)));
    }

    #[test]
    fn iterator_length_matches_len_on_adversarial_breakpoints() {
        // A breakpoint one ulp above a step multiple used to make the
        // float-accumulating iterator emit one sample fewer than len()
        // (the residual fell under the old 1e-12 snap tolerance); the
        // step-counted iterator agrees with len() by construction.
        let s = FieldSchedule::new(0.0, vec![1.000_000_000_000_000_2], 0.5).unwrap();
        let samples = s.to_samples();
        assert_eq!(samples.len(), s.len());
        assert_eq!(*samples.last().unwrap(), 1.000_000_000_000_000_2);

        // Non-representable steps accumulate no drift either.
        let s = FieldSchedule::major_loop(10_000.0, 0.1, 1).unwrap();
        assert_eq!(s.to_samples().len(), s.len());
    }

    #[test]
    fn consecutive_samples_differ_by_at_most_step() {
        let s = FieldSchedule::nested_minor_loops(10_000.0, &[2500.0], 25.0).unwrap();
        let samples = s.to_samples();
        for w in samples.windows(2) {
            assert!((w[1] - w[0]).abs() <= 25.0 + 1e-9);
        }
    }

    proptest! {
        #[test]
        fn prop_schedule_visits_all_breakpoints(
            peak in 10.0_f64..100_000.0,
            step in 0.5_f64..500.0,
            cycles in 1usize..4,
        ) {
            let s = FieldSchedule::major_loop(peak, step, cycles).unwrap();
            let samples = s.to_samples();
            // Every breakpoint must appear exactly (within fp tolerance).
            for &bp in s.breakpoints() {
                prop_assert!(samples.iter().any(|&h| (h - bp).abs() < 1e-9));
            }
            prop_assert_eq!(samples.len(), s.len());
        }

        #[test]
        fn prop_step_bound_holds(
            peak in 10.0_f64..50_000.0,
            step in 0.5_f64..500.0,
        ) {
            let s = FieldSchedule::major_loop(peak, step, 1).unwrap();
            let samples = s.to_samples();
            for w in samples.windows(2) {
                prop_assert!((w[1] - w[0]).abs() <= step + 1e-9);
            }
        }
    }
}
