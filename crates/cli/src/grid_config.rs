//! The `ja batch` grid-config format: a line-oriented `key = value` TOML
//! subset describing a [`ScenarioGrid`].
//!
//! ```text
//! # Axes accumulate: repeat a key to add a value, the grid is the
//! # cartesian product of all axes (empty axes fall back to defaults).
//! material   = date2006                            # see `ja help batch`
//! backend    = direct                              # direct|systemc|ams|time-domain|all|timeless
//! dh_max     = 10                                  # one model config per value (A/m)
//! excitation = major peak=10000 step=100 cycles=1  # triangular major loop
//! excitation = fig1 step=50                        # paper's Fig. 1 stimulus
//! excitation = biased bias=1000 amplitude=500 cycles=1 step=10
//! excitation = circuit source=sine amplitude=30 frequency=50 r=1 \
//!              turns=200 area=1e-4 path=0.1 t_end=0.04 dt=5e-5 control=fixed
//! excitation = circuit source=pwm amplitude=30 frequency=50 duty=0.25
//! excitation = degauss h_start=10000 h_stop=100 decay=0.5 step=10
//! temperature = -40:25:125                         # operating-point axis (°C)
//! geometry = area=1e-4 path=0.1 frequency=50 lamination=silicon-steel
//! ```
//!
//! (`excitation = circuit` takes its parameters on one line; the backslash
//! continuation above is for readability only.)
//!
//! `temperature` adds operating points (colon-separated list, repeatable);
//! each one resolves the material parameters through its thermal
//! coefficients before simulation.  `geometry` attaches a core geometry —
//! and optionally an electrical frequency and lamination preset — to every
//! operating point so reports carry a `loss` breakdown.
//!
//! `#` starts a comment, blank lines are ignored.  Only axes live in the
//! file; execution knobs (`--workers`, `--fail-fast`) stay on the command
//! line so the same grid can be run under different policies.

use std::collections::BTreeMap;

use hdl_models::scenario::{OperatingPoint, ScenarioGrid};
use ja_hysteresis::config::JaConfig;
use magnetics::geometry::CoreGeometry;
use magnetics::losses::LaminationSpec;

use crate::common::{
    backend_set_by_name, circuit_excitation, config_name, material_by_name, thermal_by_name,
    CircuitSpecArgs, NamedExcitation,
};
use crate::CliError;

/// A parsed `geometry = …` line: the core shape plus the optional loss
/// inputs that ride along with it on every operating point.
#[derive(Clone, Copy)]
pub(crate) struct GeometrySpec {
    /// Core cross-section and magnetic path.
    pub geometry: CoreGeometry,
    /// Electrical frequency for loss-power scaling (Hz).
    pub frequency: Option<f64>,
    /// Lamination preset enabling the eddy-current term.
    pub lamination: Option<LaminationSpec>,
}

/// Parses a colon-separated temperature list (`-40:25:125`) into Celsius
/// values.
///
/// # Errors
///
/// Usage error when any entry is not a number.
pub(crate) fn parse_temperatures(value: &str) -> Result<Vec<f64>, CliError> {
    value
        .split(':')
        .map(|token| {
            let token = token.trim();
            token
                .parse::<f64>()
                .map_err(|_| CliError::usage(format!("temperature `{token}` is not a number")))
        })
        .collect()
}

/// Parses a `geometry = area=… path=… [frequency=…] [lamination=…]` value.
///
/// # Errors
///
/// Usage error for missing/malformed parameters or unknown lamination
/// presets.
pub(crate) fn parse_geometry(value: &str) -> Result<GeometrySpec, CliError> {
    let mut params: BTreeMap<&str, &str> = BTreeMap::new();
    for token in value.split_whitespace() {
        let (key, value) = token.split_once('=').ok_or_else(|| {
            CliError::usage(format!("geometry parameter `{token}` is not `key=value`"))
        })?;
        if params.insert(key, value).is_some() {
            return Err(CliError::usage(format!(
                "geometry parameter `{key}` given twice"
            )));
        }
    }
    fn required_f64(params: &mut BTreeMap<&str, &str>, name: &str) -> Result<f64, CliError> {
        let text = params
            .remove(name)
            .ok_or_else(|| CliError::usage(format!("geometry needs `{name}=`")))?;
        text.parse::<f64>().map_err(|_| {
            CliError::usage(format!(
                "geometry parameter `{name}={text}` is not a number"
            ))
        })
    }
    let area = required_f64(&mut params, "area")?;
    let path = required_f64(&mut params, "path")?;
    let frequency = match params.remove("frequency") {
        None => None,
        Some(text) => Some(text.parse::<f64>().map_err(|_| {
            CliError::usage(format!(
                "geometry parameter `frequency={text}` is not a number"
            ))
        })?),
    };
    let lamination = match params.remove("lamination") {
        None => None,
        Some("silicon-steel") => Some(LaminationSpec::silicon_steel_0p35mm()),
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown lamination `{other}` (expected silicon-steel)"
            )))
        }
    };
    if let Some((stray, _)) = params.iter().next() {
        return Err(CliError::usage(format!(
            "geometry does not take parameter `{stray}`"
        )));
    }
    let geometry = CoreGeometry::new(area, path).map_err(|err| CliError::usage(err.to_string()))?;
    Ok(GeometrySpec {
        geometry,
        frequency,
        lamination,
    })
}

/// Expands the `temperature` and `geometry` axes into named operating
/// points.  Temperatures name the points (`t-40`, `t125`, …); a geometry
/// with no temperature axis yields a single `geom` point so losses can be
/// reported without thermal scaling.  Shared with the serve API so the two
/// surfaces can never drift on operating-point naming.
pub(crate) fn operating_points(
    temperatures: &[f64],
    geometry: Option<&GeometrySpec>,
) -> Vec<(String, OperatingPoint)> {
    let mut base = OperatingPoint::new();
    if let Some(spec) = geometry {
        base = base.with_geometry(spec.geometry);
        if let Some(frequency) = spec.frequency {
            base = base.with_frequency(frequency);
        }
        if let Some(lamination) = spec.lamination {
            base = base.with_lamination(lamination);
        }
    }
    if temperatures.is_empty() {
        if geometry.is_some() {
            vec![("geom".to_owned(), base)]
        } else {
            Vec::new()
        }
    } else {
        temperatures
            .iter()
            .map(|&t_c| (format!("t{t_c}"), base.with_temperature(t_c)))
            .collect()
    }
}

/// Parses grid-config text into a [`ScenarioGrid`].
///
/// # Errors
///
/// Usage error naming the offending line for unknown keys, malformed
/// values, unknown excitation kinds/parameters or invalid `dh_max`.
pub fn parse_grid(text: &str) -> Result<ScenarioGrid, CliError> {
    let mut grid = ScenarioGrid::new();
    let mut temperatures: Vec<f64> = Vec::new();
    let mut geometry: Option<GeometrySpec> = None;
    for (lineno, line) in crate::common::config_lines(text) {
        let at = |message: String| CliError::usage(format!("grid config line {lineno}: {message}"));
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "material" => {
                let params = material_by_name(value).map_err(|err| at(err.message))?;
                let thermal = thermal_by_name(value).map_err(|err| at(err.message))?;
                grid = grid.material_with_thermal(value, params, thermal);
            }
            "backend" => {
                let backends = backend_set_by_name(value).map_err(|err| at(err.message))?;
                grid = grid.backends(backends);
            }
            "dh_max" => {
                let dh_max: f64 = value
                    .parse()
                    .map_err(|_| at(format!("`{value}` is not a number")))?;
                let config = JaConfig::default().with_dh_max(dh_max);
                config.validate().map_err(|err| at(err.to_string()))?;
                grid = grid.config(config_name(dh_max), config);
            }
            "excitation" => {
                let named = parse_excitation(value).map_err(|err| at(err.message))?;
                grid = grid.excitation(named.name, named.excitation);
            }
            "temperature" => {
                temperatures.extend(parse_temperatures(value).map_err(|err| at(err.message))?);
            }
            "geometry" => {
                if geometry.is_some() {
                    return Err(at("geometry given twice".to_owned()));
                }
                geometry = Some(parse_geometry(value).map_err(|err| at(err.message))?);
            }
            other => {
                return Err(at(format!(
                    "unknown key `{other}` (expected material | backend | dh_max | excitation \
                     | temperature | geometry)"
                )))
            }
        }
    }
    for (name, op) in operating_points(&temperatures, geometry.as_ref()) {
        op.validate()
            .map_err(|err| CliError::usage(format!("grid config: {err}")))?;
        grid = grid.operating_point(name, op);
    }
    Ok(grid)
}

/// Parses an excitation spec: a kind token followed by `key=value`
/// parameters, e.g. `major peak=10000 step=100 cycles=1`.  Also the
/// backbone of the serve API's excitation objects (`serve_api` renders
/// them to this exact format), so the two surfaces can never drift on
/// parameter names, defaults, or scenario-key naming.
pub(crate) fn parse_excitation(spec: &str) -> Result<NamedExcitation, CliError> {
    let mut tokens = spec.split_whitespace();
    let kind = tokens
        .next()
        .ok_or_else(|| CliError::usage("empty excitation spec".to_owned()))?;
    let mut params: BTreeMap<&str, &str> = BTreeMap::new();
    for token in tokens {
        let (key, value) = token.split_once('=').ok_or_else(|| {
            CliError::usage(format!("excitation parameter `{token}` is not `key=value`"))
        })?;
        if params.insert(key, value).is_some() {
            return Err(CliError::usage(format!(
                "excitation parameter `{key}` given twice"
            )));
        }
    }
    fn f64_param(
        params: &mut BTreeMap<&str, &str>,
        name: &str,
        default: f64,
    ) -> Result<f64, CliError> {
        match params.remove(name) {
            None => Ok(default),
            Some(text) => text.parse::<f64>().map_err(|_| {
                CliError::usage(format!(
                    "excitation parameter `{name}={text}` is not a number"
                ))
            }),
        }
    }
    fn optional_f64_param(
        params: &mut BTreeMap<&str, &str>,
        name: &str,
    ) -> Result<Option<f64>, CliError> {
        match params.remove(name) {
            None => Ok(None),
            Some(text) => text.parse::<f64>().map(Some).map_err(|_| {
                CliError::usage(format!(
                    "excitation parameter `{name}={text}` is not a number"
                ))
            }),
        }
    }
    // Cycle counts are whole numbers: parse as usize directly so `cycles=1.9`
    // is rejected instead of silently truncated (and `cycles=1e20` instead of
    // saturating into a capacity-overflow panic downstream).
    fn cycles_param(params: &mut BTreeMap<&str, &str>) -> Result<usize, CliError> {
        match params.remove("cycles") {
            None => Ok(1),
            Some(text) => text.parse::<usize>().map_err(|_| {
                CliError::usage(format!(
                    "excitation parameter `cycles={text}` is not an unsigned integer"
                ))
            }),
        }
    }
    let named = match kind {
        "major" => {
            let cycles = cycles_param(&mut params)?;
            let peak = f64_param(&mut params, "peak", 10_000.0)?;
            let step = f64_param(&mut params, "step", 10.0)?;
            NamedExcitation::major(peak, step, cycles)?
        }
        "fig1" => {
            let step = f64_param(&mut params, "step", 10.0)?;
            NamedExcitation::fig1(step)?
        }
        "biased" => {
            let cycles = cycles_param(&mut params)?;
            let bias = f64_param(&mut params, "bias", 1_000.0)?;
            let amplitude = f64_param(&mut params, "amplitude", 500.0)?;
            let step = f64_param(&mut params, "step", 10.0)?;
            NamedExcitation::biased(bias, amplitude, cycles, step)?
        }
        "degauss" => {
            let h_start = f64_param(&mut params, "h_start", 10_000.0)?;
            let h_stop = f64_param(&mut params, "h_stop", 100.0)?;
            let decay = f64_param(&mut params, "decay", 0.5)?;
            let step = f64_param(&mut params, "step", 10.0)?;
            NamedExcitation::degauss(h_start, h_stop, decay, step)?
        }
        "circuit" => {
            let source = params.remove("source");
            let control = params.remove("control").unwrap_or("fixed");
            let adaptive = match control {
                "fixed" => false,
                "adaptive" => true,
                other => {
                    return Err(CliError::usage(format!(
                        "excitation parameter `control={other}` must be fixed | adaptive"
                    )))
                }
            };
            // Omitted parameters fall back to the inrush preset inside
            // `circuit_excitation` — the defaults live in exactly one
            // place (`CircuitExcitation::inrush`).
            let args = CircuitSpecArgs {
                source,
                amplitude: optional_f64_param(&mut params, "amplitude")?,
                frequency: optional_f64_param(&mut params, "frequency")?,
                duty: optional_f64_param(&mut params, "duty")?,
                resistance: optional_f64_param(&mut params, "r")?,
                turns: optional_f64_param(&mut params, "turns")?,
                area: optional_f64_param(&mut params, "area")?,
                path: optional_f64_param(&mut params, "path")?,
                t_end: optional_f64_param(&mut params, "t_end")?,
                dt: optional_f64_param(&mut params, "dt")?,
                adaptive,
                rel_tol: optional_f64_param(&mut params, "rel_tol")?,
                abs_tol: optional_f64_param(&mut params, "abs_tol")?,
                max_step: optional_f64_param(&mut params, "max_step")?,
            };
            circuit_excitation(&args, "set control=adaptive")?
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown excitation kind `{other}` \
                 (expected major | fig1 | biased | degauss | circuit)"
            )))
        }
    };
    if let Some((stray, _)) = params.iter().next() {
        return Err(CliError::usage(format!(
            "excitation kind `{kind}` does not take parameter `{stray}`"
        )));
    }
    Ok(named)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_grid() {
        let grid = parse_grid(
            "# demo grid\n\
             material = date2006\n\
             material = soft-ferrite   # second material axis value\n\
             backend = timeless\n\
             dh_max = 10\n\
             dh_max = 25\n\
             excitation = major peak=10000 step=200 cycles=1\n\
             excitation = fig1 step=100\n",
        )
        .unwrap();
        // 2 excitations x 3 backends x 2 configs x 2 materials.
        assert_eq!(grid.len(), 24);
        let scenarios = grid.scenarios().unwrap();
        assert!(scenarios[0]
            .name
            .starts_with("major(peak=10000,step=200,cycles=1)/"));
        assert!(scenarios.iter().any(|s| s.name.contains("/dh25/")));
        assert!(scenarios.iter().any(|s| s.name.ends_with("/soft-ferrite")));
    }

    #[test]
    fn axes_fall_back_to_defaults() {
        let grid = parse_grid("excitation = fig1 step=100\n").unwrap();
        assert_eq!(grid.len(), 1);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(
            scenarios[0].name,
            "fig1(step=100)/direct-timeless/default/date2006"
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("material\n", "line 1"),
            ("material = mu-metal\n", "unknown material"),
            ("backend = verilog\n", "unknown backend"),
            ("dh_max = fast\n", "not a number"),
            ("dh_max = -1\n", "dh_max"),
            ("speed = 9\n", "unknown key `speed`"),
            ("excitation = sawtooth step=1\n", "unknown excitation kind"),
            ("excitation = major step\n", "not `key=value`"),
            ("excitation = major step=a\n", "not a number"),
            ("excitation = major step=1 step=2\n", "given twice"),
            ("excitation = major cycles=1.9\n", "not an unsigned integer"),
            (
                "excitation = major cycles=1e20\n",
                "not an unsigned integer",
            ),
            ("excitation = fig1 peak=10\n", "does not take parameter"),
            ("\nexcitation = major step=0\n", "line 2"),
        ] {
            let err = parse_grid(text).expect_err(text);
            assert!(err.message.contains(needle), "`{text}` -> {}", err.message);
            assert_eq!(err.code, 2, "{text}");
        }
    }

    #[test]
    fn parses_circuit_excitations() {
        let grid = parse_grid(
            "excitation = circuit source=sine amplitude=30 frequency=50 r=1 \
             turns=200 area=1e-4 path=0.1 t_end=0.04 dt=5e-5 control=fixed\n\
             excitation = circuit control=adaptive rel_tol=0.05\n",
        )
        .unwrap();
        assert_eq!(grid.len(), 2);
        let scenarios = grid.scenarios().unwrap();
        assert!(scenarios[0]
            .name
            .starts_with("circuit(sine(amplitude=30,frequency=50),r=1,turns=200,"));
        assert!(scenarios[0].name.contains("fixed(dt=0.00005)"));
        assert!(scenarios[1].name.contains("adaptive(rel=0.05,abs=0.1,"));

        for (text, needle) in [
            ("excitation = circuit source=square\n", "unknown source"),
            ("excitation = circuit control=maybe\n", "fixed | adaptive"),
            ("excitation = circuit dt=0\n", "dt"),
            ("excitation = circuit r=zero\n", "not a number"),
            ("excitation = circuit rel_tol=0.1\n", "control=adaptive"),
            ("excitation = circuit cycles=2\n", "does not take parameter"),
        ] {
            let err = parse_grid(text).expect_err(text);
            assert!(err.message.contains(needle), "`{text}` -> {}", err.message);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let grid = parse_grid("\n  # only a comment\nexcitation = fig1 step=250 # tail\n").unwrap();
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn temperature_axis_expands_into_named_operating_points() {
        let grid = parse_grid(
            "excitation = fig1 step=100\n\
             temperature = -40:25:125\n",
        )
        .unwrap();
        assert_eq!(grid.len(), 3);
        let scenarios = grid.scenarios().unwrap();
        let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "fig1(step=100)/direct-timeless/default/date2006/t-40",
                "fig1(step=100)/direct-timeless/default/date2006/t25",
                "fig1(step=100)/direct-timeless/default/date2006/t125",
            ]
        );
        assert_eq!(
            scenarios[0].operating_point.unwrap().temperature_c,
            Some(-40.0)
        );
    }

    #[test]
    fn geometry_attaches_loss_inputs_to_every_operating_point() {
        let grid = parse_grid(
            "excitation = fig1 step=100\n\
             temperature = 25\n\
             geometry = area=1e-4 path=0.1 frequency=50 lamination=silicon-steel\n",
        )
        .unwrap();
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 1);
        let op = scenarios[0].operating_point.unwrap();
        assert_eq!(op.temperature_c, Some(25.0));
        assert_eq!(op.frequency_hz, Some(50.0));
        assert!(op.geometry.is_some());
        assert!(op.lamination.is_some());

        // Geometry without a temperature axis still yields one `geom` point.
        let grid = parse_grid(
            "excitation = fig1 step=100\n\
             geometry = area=1e-4 path=0.1 frequency=50\n",
        )
        .unwrap();
        let scenarios = grid.scenarios().unwrap();
        assert!(scenarios[0].name.ends_with("/geom"));
        assert!(scenarios[0]
            .operating_point
            .unwrap()
            .temperature_c
            .is_none());
    }

    #[test]
    fn degauss_and_pwm_lines_parse() {
        let grid = parse_grid(
            "excitation = degauss h_start=10000 h_stop=100 decay=0.5 step=10\n\
             excitation = circuit source=pwm amplitude=30 frequency=50 duty=0.25\n",
        )
        .unwrap();
        let scenarios = grid.scenarios().unwrap();
        assert!(scenarios[0]
            .name
            .starts_with("degauss(h_start=10000,h_stop=100,decay=0.5,step=10)/"));
        assert!(scenarios[1]
            .name
            .starts_with("circuit(pwm(amplitude=30,frequency=50,duty=0.25),"));
    }

    #[test]
    fn malformed_operating_point_lines_are_rejected() {
        for (text, needle) in [
            ("temperature = hot\n", "not a number"),
            ("temperature = nan\n", "temperature"),
            ("geometry = path=0.1\n", "needs `area=`"),
            (
                "geometry = area=1e-4 path=0.1 lamination=mu\n",
                "unknown lamination",
            ),
            (
                "geometry = area=1e-4 path=0.1\ngeometry = area=2e-4 path=0.2\n",
                "given twice",
            ),
            (
                "geometry = area=1e-4 path=0.1 turns=5\n",
                "does not take parameter",
            ),
            (
                "excitation = circuit source=sine duty=0.5\n",
                "duty only applies",
            ),
            ("excitation = circuit source=pwm duty=1.5\n", "duty"),
            ("excitation = degauss h_stop=20000\n", "h_stop"),
        ] {
            let err = parse_grid(text).expect_err(text);
            assert!(err.message.contains(needle), "`{text}` -> {}", err.message);
        }
    }
}
