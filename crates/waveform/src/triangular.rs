//! Triangular waveform — the excitation used throughout the paper.

use crate::error::WaveformError;
use crate::generator::Waveform;

/// A symmetric triangular waveform with amplitude `A`, period `T`, DC offset
/// and phase.  Starting at `t = 0` (zero phase) the waveform rises from the
/// offset, peaks at `+A`, falls through the offset to `−A` and returns — the
/// "triangular waveform used in a DC sweep" of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    amplitude: f64,
    period: f64,
    offset: f64,
    phase: f64,
}

impl Triangular {
    /// Creates a triangular waveform.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when the amplitude is not
    /// finite and non-negative, or the period is not finite and positive.
    pub fn new(amplitude: f64, period: f64) -> Result<Self, WaveformError> {
        if !amplitude.is_finite() || amplitude < 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "amplitude",
                value: amplitude,
                requirement: "finite and >= 0",
            });
        }
        if !period.is_finite() || period <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "period",
                value: period,
                requirement: "finite and > 0",
            });
        }
        Ok(Self {
            amplitude,
            period,
            offset: 0.0,
            phase: 0.0,
        })
    }

    /// Adds a DC offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Adds a phase expressed as a fraction of the period in `[0, 1)`.
    pub fn with_phase(mut self, phase_fraction: f64) -> Self {
        self.phase = phase_fraction.rem_euclid(1.0);
        self
    }

    /// Peak amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// DC offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }
}

impl Waveform for Triangular {
    fn value(&self, t: f64) -> f64 {
        // Normalised position in the cycle, with the cycle starting at the
        // zero-crossing of the rising edge.
        let x = (t / self.period + self.phase).rem_euclid(1.0);
        let tri = if x < 0.25 {
            4.0 * x
        } else if x < 0.75 {
            2.0 - 4.0 * x
        } else {
            4.0 * x - 4.0
        };
        self.offset + self.amplitude * tri
    }

    fn period(&self) -> Option<f64> {
        Some(self.period)
    }

    fn derivative(&self, t: f64) -> f64 {
        let x = (t / self.period + self.phase).rem_euclid(1.0);
        let slope = if (0.25..0.75).contains(&x) { -4.0 } else { 4.0 };
        self.amplitude * slope / self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Triangular::new(-1.0, 1.0).is_err());
        assert!(Triangular::new(1.0, 0.0).is_err());
        assert!(Triangular::new(f64::NAN, 1.0).is_err());
        assert!(Triangular::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn key_points_of_cycle() {
        let w = Triangular::new(10.0, 1.0).unwrap();
        assert!((w.value(0.0)).abs() < 1e-12);
        assert!((w.value(0.25) - 10.0).abs() < 1e-12);
        assert!((w.value(0.5)).abs() < 1e-12);
        assert!((w.value(0.75) + 10.0).abs() < 1e-12);
        assert!((w.value(1.0)).abs() < 1e-12);
    }

    #[test]
    fn periodicity() {
        let w = Triangular::new(3.0, 0.02).unwrap();
        for i in 0..50 {
            let t = i as f64 * 1.3e-3;
            assert!((w.value(t) - w.value(t + 0.02)).abs() < 1e-9);
        }
        assert_eq!(w.period(), Some(0.02));
    }

    #[test]
    fn offset_and_phase() {
        let w = Triangular::new(10.0, 1.0)
            .unwrap()
            .with_offset(5.0)
            .with_phase(0.25);
        assert!((w.value(0.0) - 15.0).abs() < 1e-12);
        assert_eq!(w.offset(), 5.0);
        assert_eq!(w.amplitude(), 10.0);
    }

    #[test]
    fn derivative_matches_slope() {
        let w = Triangular::new(10.0, 2.0).unwrap();
        // Rising quarter: slope = 4*A/T = 20
        assert!((w.derivative(0.1) - 20.0).abs() < 1e-9);
        // Falling half: slope = -20
        assert!((w.derivative(1.0) + 20.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_by_amplitude_plus_offset() {
        let w = Triangular::new(7.0, 0.5).unwrap().with_offset(1.0);
        for i in 0..1000 {
            let v = w.value(i as f64 * 1e-3);
            assert!((-6.0 - 1e-9..=8.0 + 1e-9).contains(&v));
        }
    }
}
