//! The magnetisation slope equation (Eq. 1 of the paper) and its guards.

use magnetics::anhysteretic::{Anhysteretic, AnhystereticKind};
use magnetics::material::JaParameters;

use crate::config::Formulation;

/// Direction of the applied-field change, which selects the sign of the
/// pinning term `δ·k` in the slope denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldDirection {
    /// `dH > 0`.
    Rising,
    /// `dH < 0`.
    Falling,
}

impl FieldDirection {
    /// Determines the direction from a field increment; `None` for a zero
    /// increment (no update is performed in that case).
    pub fn from_increment(dh: f64) -> Option<Self> {
        if dh > 0.0 {
            Some(FieldDirection::Rising)
        } else if dh < 0.0 {
            Some(FieldDirection::Falling)
        } else {
            None
        }
    }

    /// The sign `δ` (+1 rising, −1 falling).
    pub fn delta(self) -> f64 {
        match self {
            FieldDirection::Rising => 1.0,
            FieldDirection::Falling => -1.0,
        }
    }
}

/// Result of one slope evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlopeEvaluation {
    /// Effective field `H_e = H + α·M` (A/m).
    pub h_effective: f64,
    /// Normalised anhysteretic magnetisation at `H_e`.
    pub m_an: f64,
    /// Raw irreversible slope `dm_irr/dH` (normalised, per A/m) before any
    /// guard is applied — may be negative, which is the unphysical
    /// behaviour the paper's clamp removes.
    pub raw_slope: f64,
    /// Guarded slope actually used for integration.
    pub slope: f64,
}

/// Evaluates the irreversible magnetisation slope at a trial field `h`.
///
/// `m_irr` and `m_total` are the normalised state variables; which of them
/// drives the slope depends on the [`Formulation`]:
///
/// * [`Formulation::Date2006`] (the paper's listing) drives it with
///   `M_an − M_total`;
/// * [`Formulation::Classic`] drives it with `M_an − M_irr`.
///
/// With `clamp_negative` the slope is clamped to be non-negative — the
/// paper's `if (dmdh1 > 0.0)` guard.
#[allow(clippy::too_many_arguments)] // mirrors the terms of Eq. 1 one-to-one
pub fn evaluate_irreversible_slope(
    params: &JaParameters,
    anhysteretic: &AnhystereticKind,
    formulation: Formulation,
    h: f64,
    m_irr: f64,
    m_total: f64,
    direction: FieldDirection,
    clamp_negative: bool,
) -> SlopeEvaluation {
    let m_sat = params.m_sat.value();
    let h_effective = h + params.alpha * m_sat * m_total;
    let m_an = anhysteretic.normalised(h_effective);
    let m_drive = match formulation {
        Formulation::Date2006 => m_total,
        Formulation::Classic => m_irr,
    };
    let delta_m = m_an - m_drive;
    let dk = direction.delta() * params.k;
    let denominator = (1.0 + params.c) * (dk - params.alpha * m_sat * delta_m);
    let raw_slope = if denominator.abs() < f64::MIN_POSITIVE {
        // Degenerate denominator: treat as an unbounded slope of the sign of
        // delta_m; the guards (and the caller's update rejection) keep the
        // state finite.
        delta_m.signum() * f64::MAX.sqrt()
    } else {
        delta_m / denominator
    };
    let slope = if clamp_negative && raw_slope < 0.0 {
        0.0
    } else {
        raw_slope
    };
    SlopeEvaluation {
        h_effective,
        m_an,
        raw_slope,
        slope,
    }
}

/// Evaluates the *total* magnetisation slope `dM/dH` (normalised, per A/m)
/// of Eq. 1 — irreversible term plus the reversible term
/// `c/(1+c)·dM_an/dH` — as used by the conventional time-domain formulation.
pub fn evaluate_total_slope(
    params: &JaParameters,
    anhysteretic: &AnhystereticKind,
    h: f64,
    m_total: f64,
    direction: FieldDirection,
    clamp_negative: bool,
) -> f64 {
    let eval = evaluate_irreversible_slope(
        params,
        anhysteretic,
        Formulation::Date2006,
        h,
        m_total,
        m_total,
        direction,
        clamp_negative,
    );
    let reversible =
        params.c / (1.0 + params.c) * anhysteretic.derivative_normalised(eval.h_effective);
    let total = eval.slope + reversible;
    if clamp_negative {
        total.max(0.0)
    } else {
        total
    }
}

/// Applies the paper's second guard: a magnetisation update whose sign
/// opposes the field increment is rejected (`if (dm*dh < 0) dm = 0`).
pub fn reject_opposing_update(dm: f64, dh: f64, enabled: bool) -> f64 {
    if enabled && dm * dh < 0.0 {
        0.0
    } else {
        dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::material::JaParameters;

    fn setup() -> (JaParameters, AnhystereticKind) {
        let p = JaParameters::date2006();
        let a = p.default_anhysteretic();
        (p, a)
    }

    #[test]
    fn direction_from_increment() {
        assert_eq!(
            FieldDirection::from_increment(5.0),
            Some(FieldDirection::Rising)
        );
        assert_eq!(
            FieldDirection::from_increment(-5.0),
            Some(FieldDirection::Falling)
        );
        assert_eq!(FieldDirection::from_increment(0.0), None);
        assert_eq!(FieldDirection::Rising.delta(), 1.0);
        assert_eq!(FieldDirection::Falling.delta(), -1.0);
    }

    #[test]
    fn rising_demagnetised_slope_is_positive() {
        let (p, a) = setup();
        let eval = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Date2006,
            1000.0,
            0.0,
            0.0,
            FieldDirection::Rising,
            true,
        );
        assert!(eval.slope > 0.0);
        assert!(eval.m_an > 0.0);
        assert_eq!(eval.slope, eval.raw_slope);
        // With M = 0, He = H.
        assert!((eval.h_effective - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn falling_from_saturation_slope_is_positive() {
        // Coming back down from positive saturation, M_an < M, delta_m < 0,
        // dk < 0: the slope should again be positive (B falls as H falls).
        let (p, a) = setup();
        let eval = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Date2006,
            2000.0,
            0.9,
            0.9,
            FieldDirection::Falling,
            true,
        );
        assert!(eval.m_an < 0.9);
        assert!(eval.slope >= 0.0);
    }

    #[test]
    fn clamp_removes_negative_slope() {
        // Rising field but magnetisation above the anhysteretic: raw slope
        // is negative, the guard clamps it to zero.
        let (p, a) = setup();
        let eval = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Date2006,
            100.0,
            0.9,
            0.9,
            FieldDirection::Rising,
            true,
        );
        assert!(eval.raw_slope < 0.0);
        assert_eq!(eval.slope, 0.0);

        let unclamped = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Date2006,
            100.0,
            0.9,
            0.9,
            FieldDirection::Rising,
            false,
        );
        assert!(unclamped.slope < 0.0);
    }

    #[test]
    fn formulations_differ_when_reversible_present() {
        let (p, a) = setup();
        let date = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Date2006,
            3000.0,
            0.2,
            0.3,
            FieldDirection::Rising,
            true,
        );
        let classic = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Classic,
            3000.0,
            0.2,
            0.3,
            FieldDirection::Rising,
            true,
        );
        assert!(date.slope != classic.slope);
    }

    #[test]
    fn total_slope_includes_reversible_term() {
        let (p, a) = setup();
        let irr = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Date2006,
            500.0,
            0.0,
            0.0,
            FieldDirection::Rising,
            true,
        )
        .slope;
        let total = evaluate_total_slope(&p, &a, 500.0, 0.0, FieldDirection::Rising, true);
        assert!(total > irr);
    }

    #[test]
    fn opposing_update_guard() {
        assert_eq!(reject_opposing_update(0.1, -1.0, true), 0.0);
        assert_eq!(reject_opposing_update(0.1, 1.0, true), 0.1);
        assert_eq!(reject_opposing_update(-0.1, 1.0, true), 0.0);
        assert_eq!(reject_opposing_update(0.1, -1.0, false), 0.1);
    }

    #[test]
    fn near_singular_denominator_stays_finite() {
        // Choose a state where α·M_sat·Δm ≈ δk so the denominator nearly
        // vanishes; the evaluation must still return a finite slope.
        let (p, a) = setup();
        // Δm needed: k / (α·M_sat) = 4000 / 4800 = 0.8333…
        let eval = evaluate_irreversible_slope(
            &p,
            &a,
            Formulation::Date2006,
            9000.0,
            0.0,
            0.0,
            FieldDirection::Rising,
            true,
        );
        assert!(eval.slope.is_finite());
    }
}
