//! Tabular simulation traces.
//!
//! A [`Trace`] is a small column store: named columns of equal length,
//! appended row by row as a simulation progresses.  It is the common output
//! format of the sweep drivers, the event-kernel testbenches and the
//! analogue transient analysis, and the input format of the CSV/ASCII
//! exporters.

use crate::error::WaveformError;

/// A named-column table of `f64` samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl Trace {
    /// Creates a trace with the given column names and no rows.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        Self::with_capacity(names, 0)
    }

    /// Creates a trace with the given column names and every column
    /// preallocated for `rows` rows — the sweep drivers know their sample
    /// count up front, so filling the trace never reallocates.
    pub fn with_capacity<S: Into<String>, I: IntoIterator<Item = S>>(
        names: I,
        rows: usize,
    ) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let columns = names.iter().map(|_| Vec::with_capacity(rows)).collect();
        Self { names, columns }
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// `true` when the trace has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::ColumnLengthMismatch`] when the row does not
    /// have exactly one value per column.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), WaveformError> {
        if row.len() != self.names.len() {
            return Err(WaveformError::ColumnLengthMismatch {
                column: "<row>".into(),
                expected: self.names.len(),
                actual: row.len(),
            });
        }
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    /// Borrow a column by name.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::UnknownColumn`] when no column has that name.
    pub fn column(&self, name: &str) -> Result<&[f64], WaveformError> {
        let idx = self.names.iter().position(|n| n == name).ok_or_else(|| {
            WaveformError::UnknownColumn {
                column: name.to_owned(),
            }
        })?;
        Ok(&self.columns[idx])
    }

    /// Borrow a column by index.
    pub fn column_at(&self, index: usize) -> Option<&[f64]> {
        self.columns.get(index).map(Vec::as_slice)
    }

    /// Returns one row as a vector.
    pub fn row(&self, index: usize) -> Option<Vec<f64>> {
        if index >= self.len() {
            return None;
        }
        Some(self.columns.iter().map(|c| c[index]).collect())
    }

    /// Adds a whole column at once.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::ColumnLengthMismatch`] when the new column's
    /// length differs from the existing row count (unless the trace is
    /// empty, in which case the column defines the row count).
    pub fn add_column<S: Into<String>>(
        &mut self,
        name: S,
        values: Vec<f64>,
    ) -> Result<(), WaveformError> {
        let name = name.into();
        if !self.columns.is_empty() && !self.columns[0].is_empty() && values.len() != self.len() {
            return Err(WaveformError::ColumnLengthMismatch {
                column: name,
                expected: self.len(),
                actual: values.len(),
            });
        }
        self.names.push(name);
        self.columns.push(values);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rows_and_read_columns() {
        let mut t = Trace::new(["h", "b", "m"]);
        t.push_row(&[0.0, 0.0, 0.0]).unwrap();
        t.push_row(&[10.0, 0.1, 100.0]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.width(), 3);
        assert_eq!(t.column("b").unwrap(), &[0.0, 0.1]);
        assert_eq!(t.row(1).unwrap(), vec![10.0, 0.1, 100.0]);
        assert!(t.row(2).is_none());
        assert_eq!(t.column_at(0).unwrap(), &[0.0, 10.0]);
        assert!(t.column_at(7).is_none());
    }

    #[test]
    fn row_width_mismatch_rejected() {
        let mut t = Trace::new(["a", "b"]);
        assert!(t.push_row(&[1.0]).is_err());
        assert!(t.push_row(&[1.0, 2.0, 3.0]).is_err());
        assert!(t.push_row(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn unknown_column_rejected() {
        let t = Trace::new(["x"]);
        assert!(matches!(
            t.column("y"),
            Err(WaveformError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn add_column_length_check() {
        let mut t = Trace::new(["x"]);
        t.push_row(&[1.0]).unwrap();
        t.push_row(&[2.0]).unwrap();
        assert!(t.add_column("y", vec![1.0]).is_err());
        assert!(t.add_column("y", vec![1.0, 4.0]).is_ok());
        assert_eq!(t.width(), 2);
    }

    #[test]
    fn with_capacity_preallocates_every_column() {
        let mut t = Trace::with_capacity(["h", "b"], 64);
        assert!(t.is_empty());
        assert_eq!(t.width(), 2);
        t.push_row(&[1.0, 2.0]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.names(), &["a".to_string()]);
    }
}
