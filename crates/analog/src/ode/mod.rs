//! Ordinary differential equation integration.
//!
//! This is the "analogue solver" the paper's baseline implementations lean
//! on: the conventional JA models convert `dM/dH` to `dM/dt` and let one of
//! these integrators advance it in time.
//!
//! * [`explicit`] — forward Euler, Heun (RK2) and classic RK4;
//! * [`implicit`] — backward Euler and the trapezoidal rule, each solving
//!   the per-step nonlinear equation with damped Newton iteration;
//! * [`adaptive`] — an embedded Runge–Kutta–Fehlberg 4(5) pair with
//!   proportional step-size control, the closest analogue of a commercial
//!   simulator's variable-step transient engine.

pub mod adaptive;
pub mod explicit;
pub mod implicit;

use crate::error::SolverError;

/// A first-order ODE system `dy/dt = f(t, y)`.
pub trait OdeSystem {
    /// Number of state variables.
    fn dim(&self) -> usize;

    /// Evaluates the right-hand side `f(t, y)` into `dydt`.
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

impl<F> OdeSystem for (usize, F)
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.0
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.1)(t, y, dydt)
    }
}

/// A time/state trajectory produced by an integrator.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    rhs_evaluations: usize,
}

impl Trajectory {
    /// Creates a trajectory from its raw parts (used by the integrators).
    pub fn new(times: Vec<f64>, states: Vec<Vec<f64>>, rhs_evaluations: usize) -> Self {
        Self {
            times,
            states,
            rhs_evaluations,
        }
    }

    /// Sampled times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled state vectors (one per time).
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when the trajectory holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The final state vector.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty (integrators always record the
    /// initial condition, so this cannot happen for their output).
    pub fn last_state(&self) -> &[f64] {
        self.states
            .last()
            .expect("trajectory contains at least the initial state")
    }

    /// Extracts component `i` of the state as its own series.
    pub fn component(&self, i: usize) -> Vec<f64> {
        self.states.iter().map(|s| s[i]).collect()
    }

    /// Total number of right-hand-side evaluations the integrator used — the
    /// cost metric reported by the runtime-comparison experiment.
    pub fn rhs_evaluations(&self) -> usize {
        self.rhs_evaluations
    }
}

/// A fixed-step integrator.
pub trait FixedStepIntegrator {
    /// Advances `system` from `t0` to `t_end` with step `dt`, starting at
    /// `y0`, and returns the full trajectory (including the initial state).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidStep`] for a non-positive or non-finite
    /// step or reversed time interval, [`SolverError::BadStateLength`] when
    /// `y0` does not match the system dimension, and any solver error raised
    /// by implicit methods (singular iteration matrix, non-convergence).
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<Trajectory, SolverError>;
}

pub(crate) fn validate_fixed_step(
    dim: usize,
    y0: &[f64],
    t0: f64,
    t_end: f64,
    dt: f64,
) -> Result<usize, SolverError> {
    if y0.len() != dim {
        return Err(SolverError::BadStateLength {
            expected: dim,
            actual: y0.len(),
        });
    }
    if !dt.is_finite() || dt <= 0.0 {
        return Err(SolverError::InvalidStep {
            name: "dt",
            value: dt,
        });
    }
    if !t0.is_finite() || !t_end.is_finite() || t_end < t0 {
        return Err(SolverError::InvalidStep {
            name: "t_end",
            value: t_end,
        });
    }
    Ok(((t_end - t0) / dt).ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_systems_implement_ode_system() {
        let sys = (2usize, |_t: f64, y: &[f64], dydt: &mut [f64]| {
            dydt[0] = y[1];
            dydt[1] = -y[0];
        });
        assert_eq!(sys.dim(), 2);
        let mut out = [0.0, 0.0];
        sys.rhs(0.0, &[1.0, 2.0], &mut out);
        assert_eq!(out, [2.0, -1.0]);
    }

    #[test]
    fn trajectory_accessors() {
        let traj = Trajectory::new(vec![0.0, 1.0], vec![vec![1.0, 2.0], vec![3.0, 4.0]], 7);
        assert_eq!(traj.len(), 2);
        assert!(!traj.is_empty());
        assert_eq!(traj.last_state(), &[3.0, 4.0]);
        assert_eq!(traj.component(1), vec![2.0, 4.0]);
        assert_eq!(traj.rhs_evaluations(), 7);
        assert_eq!(traj.times(), &[0.0, 1.0]);
        assert_eq!(traj.states().len(), 2);
    }

    #[test]
    fn validation_rules() {
        assert!(validate_fixed_step(1, &[0.0], 0.0, 1.0, 0.1).is_ok());
        assert!(validate_fixed_step(2, &[0.0], 0.0, 1.0, 0.1).is_err());
        assert!(validate_fixed_step(1, &[0.0], 0.0, 1.0, 0.0).is_err());
        assert!(validate_fixed_step(1, &[0.0], 1.0, 0.0, 0.1).is_err());
        assert!(validate_fixed_step(1, &[0.0], 0.0, f64::NAN, 0.1).is_err());
    }
}
