//! Dense linear algebra: matrices, vectors and LU factorisation.
//!
//! The MNA matrices of the circuits in this reproduction are tiny (a handful
//! of nodes), so a straightforward dense row-major matrix with partial-pivot
//! LU is the right tool — no sparse machinery needed.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::SolverError;

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a nested array of rows.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] when the rows have
    /// different lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, SolverError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        for row in rows {
            if row.len() != n_cols {
                return Err(SolverError::DimensionMismatch {
                    context: "Matrix::from_rows",
                    expected: n_cols,
                    actual: row.len(),
                });
            }
        }
        Ok(Self {
            rows: n_rows,
            cols: n_cols,
            data: rows.iter().flatten().copied().collect(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero (reuses the allocation between transient
    /// steps).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Adds `value` to entry `(row, col)` — the MNA "stamp" operation.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, SolverError> {
        if x.len() != self.cols {
            return Err(SolverError::DimensionMismatch {
                context: "Matrix::mul_vec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        if self.cols == 0 {
            return Ok(vec![0.0; self.rows]);
        }
        let result = self
            .data
            .chunks(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect();
        Ok(result)
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// LU-factorises the matrix (with partial pivoting) and solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::SingularMatrix`] when a pivot is numerically
    /// zero, or [`SolverError::DimensionMismatch`] for a non-square matrix
    /// or wrong-length right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        let lu = LuFactorisation::new(self.clone())?;
        lu.solve(b)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// An LU factorisation with partial pivoting, reusable for several
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactorisation {
    lu: Matrix,
    pivots: Vec<usize>,
}

impl LuFactorisation {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] for non-square input and
    /// [`SolverError::SingularMatrix`] when a pivot column has no usable
    /// pivot.
    pub fn new(mut a: Matrix) -> Result<Self, SolverError> {
        if a.rows != a.cols {
            return Err(SolverError::DimensionMismatch {
                context: "LuFactorisation::new (square matrix required)",
                expected: a.rows,
                actual: a.cols,
            });
        }
        let n = a.rows;
        let mut pivots = (0..n).collect::<Vec<_>>();
        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SolverError::SingularMatrix { column: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = tmp;
                }
                pivots.swap(k, pivot_row);
            }
            for i in (k + 1)..n {
                let factor = a[(i, k)] / a[(k, k)];
                a[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * a[(k, j)];
                    a[(i, j)] -= delta;
                }
            }
        }
        Ok(Self { lu: a, pivots })
    }

    /// Solves `A·x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(SolverError::DimensionMismatch {
                context: "LuFactorisation::solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Apply the row permutation.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }
}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm of a vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

/// `a − b` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + s·b` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn mul_vec_handles_zero_column_matrix() {
        let empty = Matrix::zeros(0, 0);
        assert_eq!(empty.mul_vec(&[]).unwrap(), Vec::<f64>::new());
        let tall = Matrix::zeros(3, 0);
        assert_eq!(tall.mul_vec(&[]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn known_3x3_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = vec![8.0, -11.0, -3.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SolverError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]).is_err());
    }

    #[test]
    fn mul_vec_and_norms() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, -4.0]]).unwrap();
        let y = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, -1.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
        assert_eq!(a.norm_inf(), 7.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn stamp_add_and_clear() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 1.5);
        a.add(0, 0, 0.5);
        assert_eq!(a[(0, 0)], 2.0);
        a.clear();
        assert_eq!(a[(0, 0)], 0.0);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 1.0]), vec![2.0, 1.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[1.0, 2.0]), vec![3.0, 5.0]);
    }

    #[test]
    fn display_formats_rows() {
        let a = Matrix::identity(2);
        let text = a.to_string();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let lu = LuFactorisation::new(a.clone()).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -2.0]] {
            let x = lu.solve(&b).unwrap();
            let back = a.mul_vec(&x).unwrap();
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn prop_solve_recovers_solution(
            seed in proptest::collection::vec(-10.0_f64..10.0, 9),
            x_true in proptest::collection::vec(-5.0_f64..5.0, 3),
        ) {
            // Build a diagonally dominant matrix so it is well conditioned.
            let mut a = Matrix::zeros(3, 3);
            for i in 0..3 {
                let mut row_sum = 0.0;
                for j in 0..3 {
                    if i != j {
                        a[(i, j)] = seed[i * 3 + j];
                        row_sum += seed[i * 3 + j].abs();
                    }
                }
                a[(i, i)] = row_sum + 1.0 + seed[i * 3 + i].abs();
            }
            let b = a.mul_vec(&x_true).unwrap();
            let x = a.solve(&b).unwrap();
            for (xs, xt) in x.iter().zip(&x_true) {
                prop_assert!((xs - xt).abs() < 1e-8);
            }
        }
    }
}
