//! Steady-state allocation audit of the lockstep fitting objective.
//!
//! [`BatchObjective`] owns its schedule samples, SoA columns, per-lane
//! curve buffers and cost vector, all grown to a high-water mark on first
//! use — so once warm, a `costs()` call must not touch the allocator at
//! all.  A counting global allocator makes that a hard assertion instead
//! of a code-review promise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ja_repro::ja_hysteresis::backend::HysteresisBackend;
use ja_repro::ja_hysteresis::fitting::{starting_points, BatchObjective, FitOptions};
use ja_repro::ja_hysteresis::model::JilesAtherton;
use ja_repro::magnetics::loop_analysis::loop_metrics;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::schedule::FieldSchedule;

/// Counts every allocation and reallocation; frees are passed through.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warm_batch_objective_cost_calls_do_not_allocate() {
    let measured = {
        let mut model = JilesAtherton::new(JaParameters::date2006()).expect("material");
        let schedule = FieldSchedule::major_loop(10_000.0, 100.0, 2).expect("schedule");
        model.run_schedule(&schedule).expect("sweep")
    };
    let target = loop_metrics(&measured).expect("closed loop");
    let options = FitOptions {
        sweep_step: 200.0,
        ..FitOptions::default()
    };
    let mut objective = BatchObjective::from_target(target, 10_000.0, &options).expect("objective");
    let candidates = starting_points(&target, 8, 42).expect("starts");

    // First call grows every buffer to the high-water lane count.
    let warm_up = objective.costs(&candidates);
    assert!(warm_up.iter().all(Result::is_ok));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..5 {
        let costs = objective.costs(&candidates);
        assert_eq!(costs.len(), candidates.len());
    }
    // Shrinking the lane count must reuse the high-water buffers too.
    let fewer = objective.costs(&candidates[..3]);
    assert_eq!(fewer.len(), 3);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "warm costs() calls performed {allocations} allocations"
    );
}
