//! `ja serve` — the persistent scenario-evaluation daemon.

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use hdl_models::serve::{serve, ResultCache, ServerOptions};

use crate::{opts, serve_api, CliError};

/// Per-subcommand help (see `ja help serve`).
pub const HELP: &str = "\
ja serve — long-running scenario-evaluation service over HTTP/1.1

USAGE:
    ja serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT    listen address; port 0 picks an ephemeral port
                        [default: 127.0.0.1:7878]
    --workers N         request workers = max in-flight requests [default: 2]
    --queue N           accepted requests that may wait beyond the in-flight
                        ones; when full, new requests get an immediate 503
                        [default: 16]
    --eval-workers N    threads evaluating ONE request (the batch/fit
                        pools); 0 = one per core.  A server policy, not a
                        request field: reports are byte-identical for any
                        value                                   [default: 0]
    --cache-bytes N     result-cache byte budget; 0 disables caching
                        [default: 67108864]
    --port-file PATH    write the bound address to PATH after binding
                        (lets scripts use --addr 127.0.0.1:0)

ENDPOINTS (wire protocol spec: docs/PROTOCOL.md):
    POST /v1/eval       evaluate a schema_version-1 request document
                        (batch_request | fit_request | sweep_request |
                        transient_request); the response body is
                        byte-identical to the offline subcommand's report.
                        A batch_request with `options.stream: true` is
                        answered as an application/x-ndjson stream instead:
                        one record per grid entry as it completes, then a
                        final batch_manifest line — byte-identical to the
                        `ja batch --format ndjson` file for the same grid
    GET  /v1/health     liveness + cache counters
    POST /v1/shutdown   drain and exit (SIGINT/SIGTERM do the same)

Responses are cached content-addressed: an identical request (any JSON
key order; routing/cache_info differences ignored) is answered from the
cache with the identical bytes.  Set `options.cache_info: true` to get
the X-Ja-Cache: hit|miss marker headers.  Streamed responses bypass the
cache (there is no complete body to store) and carry no cache markers.

Logs go to stderr; stdout stays clean.  Exit status 0 after a graceful
drain.";

/// Set by the SIGINT/SIGTERM handler and by `POST /v1/shutdown`; the
/// accept loop polls it and drains when it flips.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler() {
    use std::sync::atomic::Ordering;

    extern "C" fn request_shutdown(_signal: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        // libc is already linked through std; declaring `signal` directly
        // avoids a crate dependency the offline container cannot fetch.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` only installs the handler, and the handler body is
    // a single atomic store — async-signal-safe by construction.
    unsafe {
        signal(SIGINT, request_shutdown);
        signal(SIGTERM, request_shutdown);
    }
}

#[cfg(not(unix))]
fn install_signal_handler() {
    // No handler: ctrl-c terminates the process without draining, and
    // POST /v1/shutdown remains the graceful path.
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures for bind/port-file/socket
/// errors.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &[],
        &[
            "addr",
            "workers",
            "queue",
            "eval-workers",
            "cache-bytes",
            "port-file",
        ],
    )?;
    parsed.no_positionals()?;

    let addr = parsed.value("addr").unwrap_or("127.0.0.1:7878");
    let listener = TcpListener::bind(addr)
        .map_err(|err| CliError::failure(format!("cannot bind `{addr}`: {err}")))?;
    let local = listener
        .local_addr()
        .map_err(|err| CliError::failure(err.to_string()))?;
    if let Some(path) = parsed.value("port-file") {
        std::fs::write(path, format!("{local}\n"))
            .map_err(|err| CliError::failure(format!("cannot write `{path}`: {err}")))?;
    }

    let options = ServerOptions {
        workers: parsed.usize_or("workers", 2)?,
        queue_depth: parsed.usize_or("queue", 16)?,
        max_body_bytes: 4 * 1024 * 1024,
        io_timeout: Duration::from_secs(10),
    };
    let state = serve_api::ServeState {
        shutdown: &SHUTDOWN,
        cache: ResultCache::new(parsed.usize_or("cache-bytes", 64 * 1024 * 1024)?),
        eval_workers: parsed.usize_or("eval-workers", 0)?,
    };
    install_signal_handler();

    eprintln!(
        "ja serve: listening on http://{local} ({} request workers, queue {}, cache budget {} \
         bytes); SIGINT or POST /v1/shutdown drains",
        options.workers,
        options.queue_depth,
        state.cache.stats().budget_bytes,
    );
    let summary = serve(listener, &options, &SHUTDOWN, |request| {
        serve_api::handle_request(&state, request)
    })
    .map_err(|err| CliError::failure(format!("serve: {err}")))?;
    let stats = state.cache.stats();
    eprintln!(
        "ja serve: drained ({} served, {} rejected; cache: {} hits, {} misses, {} evictions)",
        summary.served, summary.rejected, stats.hits, stats.misses, stats.evictions,
    );
    Ok(())
}
