//! Shared helpers: name → domain-object lookups, excitation construction,
//! report envelopes and output writing.

use hdl_models::exec::SoaRouting;
use hdl_models::report;
use hdl_models::scenario::{
    BackendKind, CircuitExcitation, Excitation, ScenarioOutcome, SourceWaveform, StepControl,
};
use ja_hysteresis::json::JsonValue;
use magnetics::material::JaParameters;
use magnetics::thermal::ThermalCoefficients;

use crate::CliError;

/// Accepted material preset names (the `magnetics` crate's constructors).
pub const MATERIALS: [&str; 4] = ["date2006", "ja1984", "soft-ferrite", "hard-steel"];

/// Looks a material preset up by name.
///
/// # Errors
///
/// Usage error for an unknown name.
pub fn material_by_name(name: &str) -> Result<JaParameters, CliError> {
    match name {
        "date2006" => Ok(JaParameters::date2006()),
        "ja1984" => Ok(JaParameters::jiles_atherton_1984()),
        "soft-ferrite" => Ok(JaParameters::soft_ferrite()),
        "hard-steel" => Ok(JaParameters::hard_steel()),
        other => Err(CliError::usage(format!(
            "unknown material `{other}` (expected one of: {})",
            MATERIALS.join(", ")
        ))),
    }
}

/// Looks a material preset's thermal coefficients up by the same name as
/// [`material_by_name`], so temperature-axis grids always pair a preset
/// with its matching Curie point and drift constants.
///
/// # Errors
///
/// Usage error for an unknown name.
pub fn thermal_by_name(name: &str) -> Result<ThermalCoefficients, CliError> {
    match name {
        "date2006" => Ok(ThermalCoefficients::date2006()),
        "ja1984" => Ok(ThermalCoefficients::jiles_atherton_1984()),
        "soft-ferrite" => Ok(ThermalCoefficients::soft_ferrite()),
        "hard-steel" => Ok(ThermalCoefficients::hard_steel()),
        other => Err(CliError::usage(format!(
            "unknown material `{other}` (expected one of: {})",
            MATERIALS.join(", ")
        ))),
    }
}

/// Looks a backend up by its label or short alias.
///
/// # Errors
///
/// Usage error for an unknown name.
pub fn backend_by_name(name: &str) -> Result<BackendKind, CliError> {
    match name {
        "direct" | "direct-timeless" => Ok(BackendKind::DirectTimeless),
        "systemc" | "systemc-event-kernel" => Ok(BackendKind::SystemC),
        "ams" | "ams-timeless" => Ok(BackendKind::AmsTimeless),
        "time-domain" | "time-domain-baseline" => Ok(BackendKind::TimeDomainBaseline),
        other => Err(CliError::usage(format!(
            "unknown backend `{other}` (expected direct | systemc | ams | time-domain, \
             or the full labels)"
        ))),
    }
}

/// Looks the lockstep routing policy up by its `--routing` name.  Routing
/// never changes report content (the SoA `f64` lanes are bit-identical to
/// scalar execution) — only how candidate work is scheduled.
///
/// # Errors
///
/// Usage error for an unknown name.
pub fn routing_by_name(name: &str) -> Result<SoaRouting, CliError> {
    match name {
        "auto" => Ok(SoaRouting::Auto),
        "soa" => Ok(SoaRouting::ForceSoa),
        "scalar" => Ok(SoaRouting::ForceScalar),
        other => Err(CliError::usage(format!(
            "unknown routing `{other}` (expected auto | soa | scalar)"
        ))),
    }
}

/// Expands a backend list name: `all`, `timeless`, or a single backend.
///
/// # Errors
///
/// Usage error for an unknown name.
pub fn backend_set_by_name(name: &str) -> Result<Vec<BackendKind>, CliError> {
    match name {
        "all" => Ok(BackendKind::ALL.to_vec()),
        "timeless" => Ok(BackendKind::TIMELESS.to_vec()),
        other => Ok(vec![backend_by_name(other)?]),
    }
}

/// An excitation together with the stable name used in scenario keys
/// (derived from the parameters, so the same stimulus always gets the same
/// key — reports stay diffable).
pub struct NamedExcitation {
    /// Scenario-key component, e.g. `major(peak=10000,step=100,cycles=1)`.
    pub name: String,
    /// The stimulus itself.
    pub excitation: Excitation,
}

impl NamedExcitation {
    /// The paper's Fig. 1 stimulus with the given field step.
    ///
    /// # Errors
    ///
    /// Failure when the step is invalid for the schedule.
    pub fn fig1(step: f64) -> Result<Self, CliError> {
        Ok(Self {
            name: format!("fig1(step={step})"),
            excitation: Excitation::fig1(step).map_err(CliError::from)?,
        })
    }

    /// A triangular major loop.
    ///
    /// # Errors
    ///
    /// Failure when the parameters are invalid for the schedule.
    pub fn major(peak: f64, step: f64, cycles: usize) -> Result<Self, CliError> {
        Ok(Self {
            name: format!("major(peak={peak},step={step},cycles={cycles})"),
            excitation: Excitation::major_loop(peak, step, cycles).map_err(CliError::from)?,
        })
    }

    /// A biased minor loop.
    ///
    /// # Errors
    ///
    /// Failure when the parameters are invalid for the schedule.
    pub fn biased(bias: f64, amplitude: f64, cycles: usize, step: f64) -> Result<Self, CliError> {
        Ok(Self {
            name: format!("biased(bias={bias},amplitude={amplitude},cycles={cycles},step={step})"),
            excitation: Excitation::biased_minor_loop(bias, amplitude, cycles, step)
                .map_err(CliError::from)?,
        })
    }

    /// A degaussing schedule: triangular cycles decaying geometrically
    /// from `h_start` towards `h_stop`, finishing at `H = 0`.
    ///
    /// # Errors
    ///
    /// Failure when the parameters are invalid for the schedule.
    pub fn degauss(h_start: f64, h_stop: f64, decay: f64, step: f64) -> Result<Self, CliError> {
        Ok(Self {
            name: format!("degauss(h_start={h_start},h_stop={h_stop},decay={decay},step={step})"),
            excitation: Excitation::demagnetisation(h_start, h_stop, decay, step)
                .map_err(CliError::from)?,
        })
    }
}

/// Raw circuit-excitation parameters as they arrive from the command line
/// or a grid-config line, before validation by the scenario layer.  Every
/// parameter is optional; `None` falls back to the corresponding field of
/// the [`CircuitExcitation::inrush`] preset, so the CLI defaults and the
/// library preset can never diverge.
#[derive(Default)]
pub struct CircuitSpecArgs<'a> {
    /// Source waveform kind: `sine`, `triangular` or `pwm`.
    pub source: Option<&'a str>,
    /// Source peak voltage (V).
    pub amplitude: Option<f64>,
    /// Source frequency (Hz).
    pub frequency: Option<f64>,
    /// PWM duty cycle in (0, 1); only meaningful for `source=pwm`.
    pub duty: Option<f64>,
    /// Series resistance (Ω).
    pub resistance: Option<f64>,
    /// Winding turns.
    pub turns: Option<f64>,
    /// Core cross-section (m²).
    pub area: Option<f64>,
    /// Magnetic path length (m).
    pub path: Option<f64>,
    /// Transient end time (s).
    pub t_end: Option<f64>,
    /// Fixed-step size (s); under the adaptive controller it seeds the
    /// initial step instead.
    pub dt: Option<f64>,
    /// Use the adaptive step controller instead of fixed `dt`.
    pub adaptive: bool,
    /// Adaptive relative-tolerance override.
    pub rel_tol: Option<f64>,
    /// Adaptive absolute-tolerance override.
    pub abs_tol: Option<f64>,
    /// Adaptive step-ceiling override.
    pub max_step: Option<f64>,
}

/// Builds a named circuit excitation from raw parameters, defaulting every
/// omitted field to the [`CircuitExcitation::inrush`] preset.  The name
/// derives from every parameter (control included), so identical circuits
/// always land under the same scenario key and reports stay diffable.
///
/// # Errors
///
/// Usage error for an unknown source kind, adaptive-only tuning knobs
/// given without adaptive control (`adaptive_hint` names the surface's
/// way of enabling it), or parameters the scenario layer rejects.
pub fn circuit_excitation(
    args: &CircuitSpecArgs<'_>,
    adaptive_hint: &str,
) -> Result<NamedExcitation, CliError> {
    if !args.adaptive
        && (args.rel_tol.is_some() || args.abs_tol.is_some() || args.max_step.is_some())
    {
        return Err(CliError::usage(format!(
            "rel_tol/abs_tol/max_step tune the adaptive controller; {adaptive_hint}"
        )));
    }
    let defaults = CircuitExcitation::inrush();
    let amplitude = args
        .amplitude
        .unwrap_or_else(|| defaults.source.amplitude());
    let frequency = args
        .frequency
        .unwrap_or_else(|| defaults.source.frequency());
    let source_kind = args.source.unwrap_or_else(|| defaults.source.label());
    if args.duty.is_some() && source_kind != "pwm" {
        return Err(CliError::usage(format!(
            "duty only applies to source=pwm, not `{source_kind}`"
        )));
    }
    let source = match source_kind {
        "sine" => SourceWaveform::Sine {
            amplitude,
            frequency,
        },
        "triangular" => SourceWaveform::Triangular {
            amplitude,
            frequency,
        },
        "pwm" => SourceWaveform::Pwm {
            amplitude,
            frequency,
            duty: args.duty.unwrap_or(0.5),
        },
        other => {
            return Err(CliError::usage(format!(
                "unknown source `{other}` (expected sine | triangular | pwm)"
            )))
        }
    };
    let resistance = args.resistance.unwrap_or(defaults.series_resistance);
    let turns = args.turns.unwrap_or(defaults.turns);
    let area = args.area.unwrap_or(defaults.area);
    let path = args.path.unwrap_or(defaults.path_length);
    let t_end = args.t_end.unwrap_or(defaults.t_end);
    let dt = args.dt.unwrap_or(defaults.dt);
    let mut spec = CircuitExcitation::new(source, resistance, turns, area, path, t_end, dt)
        .map_err(|err| CliError::usage(err.to_string()))?;
    let control_name = if args.adaptive {
        let mut options = CircuitExcitation::adaptive_defaults();
        if let Some(rel_tol) = args.rel_tol {
            options.rel_tol = rel_tol;
        }
        if let Some(abs_tol) = args.abs_tol {
            options.abs_tol = abs_tol;
        }
        if let Some(max_step) = args.max_step {
            options.max_step = max_step;
        }
        // An explicit dt under adaptive control is not ignored: it seeds
        // the controller's first step.
        if let Some(dt) = args.dt {
            options.initial_step = dt;
        }
        // Reject bad controller values here, as a usage error naming the
        // field — not as a runtime solver failure from inside the batch.
        options
            .validate()
            .map_err(|err| CliError::usage(err.to_string()))?;
        spec = spec.with_step_control(StepControl::Adaptive(options));
        format!(
            "adaptive(rel={},abs={},max={},init={})",
            options.rel_tol, options.abs_tol, options.max_step, options.initial_step
        )
    } else {
        format!("fixed(dt={dt})")
    };
    let source_name = match source.duty() {
        Some(duty) => format!("pwm(amplitude={amplitude},frequency={frequency},duty={duty})"),
        None => format!(
            "{}(amplitude={amplitude},frequency={frequency})",
            source.label()
        ),
    };
    Ok(NamedExcitation {
        name: format!(
            "circuit({source_name},r={resistance},\
             turns={turns},area={area},path={path},t_end={t_end},{control_name})"
        ),
        excitation: Excitation::Circuit(spec),
    })
}

/// Iterates the meaningful lines of a `key = value` config file: strips
/// `#` comments and surrounding whitespace, skips blank lines, and yields
/// 1-based `(line_number, content)` pairs for error reporting.  Shared by
/// the `ja batch` grid config and the `ja fit` library config, so the two
/// formats can never drift on lexing.
pub fn config_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(index, raw_line)| {
        let line = match raw_line.split_once('#') {
            Some((content, _comment)) => content.trim(),
            None => raw_line.trim(),
        };
        if line.is_empty() {
            None
        } else {
            Some((index + 1, line))
        }
    })
}

/// The scenario-key config-axis name for a `ΔH_max` value (`dh10`,
/// `dh2.5`, …), matching the convention of the workspace's grids.
pub fn config_name(dh_max: f64) -> String {
    format!("dh{dh_max}")
}

/// Prepends the shared envelope (`schema_version`, `kind`) to the fields of
/// a serialised scenario outcome, producing a flat single-outcome report.
pub fn enveloped_outcome(kind: &str, outcome: &ScenarioOutcome, timings: bool) -> JsonValue {
    let mut doc = report::report_envelope(kind);
    if let JsonValue::Object(fields) = report::outcome_value(outcome, timings) {
        for (key, value) in fields {
            doc.push(key, value);
        }
    }
    doc
}

/// Writes a BH trajectory as CSV (columns `h`, `b`, `m`) to `--out PATH`
/// or stdout — the one serialization `ja sweep` and `ja inverse` share.
///
/// # Errors
///
/// Failure when CSV formatting or the output write fails.
pub fn write_curve_csv(out: Option<&str>, curve: &magnetics::bh::BhCurve) -> Result<(), CliError> {
    let mut trace = waveform::trace::Trace::new(["h", "b", "m"]);
    for point in curve.points() {
        trace
            .push_row(&[point.h.value(), point.b.as_tesla(), point.m.value()])
            .expect("three values per row");
    }
    let mut buf = Vec::new();
    waveform::export::write_csv(&trace, &mut buf)
        .map_err(|err| CliError::failure(err.to_string()))?;
    write_output(out, &String::from_utf8(buf).expect("CSV is UTF-8"))
}

/// Writes `content` to `--out PATH`, or to stdout when no path was given.
///
/// # Errors
///
/// Failure when the file cannot be written.
pub fn write_output(out: Option<&str>, content: &str) -> Result<(), CliError> {
    match out {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => std::fs::write(path, content)
            .map_err(|err| CliError::failure(format!("cannot write `{path}`: {err}"))),
    }
}

/// Reads a whole input file.
///
/// # Errors
///
/// Failure when the file cannot be read.
pub fn read_input(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|err| CliError::failure(format!("cannot read `{path}`: {err}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_and_backend_lookup() {
        for name in MATERIALS {
            assert!(material_by_name(name).is_ok(), "{name}");
        }
        assert!(material_by_name("mu-metal").is_err());
        assert_eq!(
            backend_by_name("direct").unwrap(),
            BackendKind::DirectTimeless
        );
        assert_eq!(
            backend_by_name("systemc-event-kernel").unwrap(),
            BackendKind::SystemC
        );
        assert!(backend_by_name("verilog").is_err());
        assert_eq!(backend_set_by_name("all").unwrap().len(), 4);
        assert_eq!(backend_set_by_name("timeless").unwrap().len(), 3);
        assert_eq!(backend_set_by_name("ams").unwrap().len(), 1);
    }

    #[test]
    fn excitation_names_are_stable() {
        assert_eq!(
            NamedExcitation::major(10_000.0, 100.0, 1).unwrap().name,
            "major(peak=10000,step=100,cycles=1)"
        );
        assert_eq!(NamedExcitation::fig1(50.0).unwrap().name, "fig1(step=50)");
        assert_eq!(
            NamedExcitation::biased(1_000.0, 500.0, 2, 10.0)
                .unwrap()
                .name,
            "biased(bias=1000,amplitude=500,cycles=2,step=10)"
        );
        assert_eq!(config_name(10.0), "dh10");
        assert_eq!(config_name(2.5), "dh2.5");
    }

    #[test]
    fn invalid_excitations_are_reported() {
        assert!(NamedExcitation::major(10_000.0, -1.0, 1).is_err());
        assert!(NamedExcitation::fig1(0.0).is_err());
        assert!(NamedExcitation::degauss(10_000.0, 20_000.0, 0.5, 10.0).is_err());
    }

    #[test]
    fn degauss_names_are_stable() {
        assert_eq!(
            NamedExcitation::degauss(10_000.0, 100.0, 0.5, 10.0)
                .unwrap()
                .name,
            "degauss(h_start=10000,h_stop=100,decay=0.5,step=10)"
        );
    }

    #[test]
    fn pwm_circuit_names_carry_the_duty_cycle() {
        let named = circuit_excitation(
            &CircuitSpecArgs {
                source: Some("pwm"),
                amplitude: Some(30.0),
                frequency: Some(50.0),
                duty: Some(0.25),
                ..CircuitSpecArgs::default()
            },
            "pass --adaptive",
        )
        .unwrap();
        assert!(
            named
                .name
                .starts_with("circuit(pwm(amplitude=30,frequency=50,duty=0.25),"),
            "{}",
            named.name
        );
    }

    #[test]
    fn duty_is_rejected_for_non_pwm_sources() {
        let err = match circuit_excitation(
            &CircuitSpecArgs {
                source: Some("sine"),
                duty: Some(0.5),
                ..CircuitSpecArgs::default()
            },
            "pass --adaptive",
        ) {
            Err(err) => err,
            Ok(named) => panic!("expected a usage error, got `{}`", named.name),
        };
        assert!(err.message.contains("duty only applies"), "{}", err.message);
    }

    #[test]
    fn thermal_presets_pair_with_materials() {
        for name in MATERIALS {
            assert!(thermal_by_name(name).is_ok(), "{name}");
        }
        assert!(thermal_by_name("mu-metal").is_err());
    }
}
