//! Error type for waveform construction and export.

use std::error::Error;
use std::fmt;

/// Errors produced while building waveforms, schedules or exporting traces.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformError {
    /// A waveform parameter (amplitude, period, step…) is out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Requirement the value violated.
        requirement: &'static str,
    },
    /// A piecewise-linear definition had fewer than two breakpoints or
    /// non-monotonic abscissae.
    InvalidBreakpoints {
        /// Explanation of what is wrong with the breakpoint list.
        reason: &'static str,
    },
    /// Trace columns have mismatched lengths.
    ColumnLengthMismatch {
        /// Name of the column that differs.
        column: String,
        /// Expected length (rows already in the trace).
        expected: usize,
        /// Actual length of the added column.
        actual: usize,
    },
    /// The requested column does not exist in the trace.
    UnknownColumn {
        /// Name of the missing column.
        column: String,
    },
    /// Formatting or I/O failure while exporting.
    Export(String),
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(
                f,
                "invalid waveform parameter `{name}` = {value}: must satisfy {requirement}"
            ),
            WaveformError::InvalidBreakpoints { reason } => {
                write!(f, "invalid piecewise-linear breakpoints: {reason}")
            }
            WaveformError::ColumnLengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has {actual} rows, trace expects {expected}"
            ),
            WaveformError::UnknownColumn { column } => {
                write!(f, "trace has no column named `{column}`")
            }
            WaveformError::Export(msg) => write!(f, "export failed: {msg}"),
        }
    }
}

impl Error for WaveformError {}

impl From<std::io::Error> for WaveformError {
    fn from(err: std::io::Error) -> Self {
        WaveformError::Export(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = WaveformError::InvalidParameter {
            name: "period",
            value: 0.0,
            requirement: "> 0",
        };
        assert!(err.to_string().contains("period"));

        let err = WaveformError::UnknownColumn { column: "B".into() };
        assert!(err.to_string().contains("`B`"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk full");
        let err: WaveformError = io.into();
        assert!(matches!(err, WaveformError::Export(_)));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<WaveformError>();
    }
}
