//! Multi-start parallel parameter fitting — parameter extraction as a
//! batch workload.
//!
//! A single coordinate-descent fit ([`ja_hysteresis::fitting`]) is a local
//! search: it lands in whatever minimum the physically motivated initial
//! guess sits in.  [`fit_batch`] runs the same local optimizer from many
//! seeded, deterministic starting points ([`starting_points`]) — and over
//! many measured loops at once — fanned across the worker pool of
//! [`crate::exec::parallel_map`], then keeps the best result per loop.
//!
//! The parallelism follows the same rules as scenario batches:
//!
//! * **Worker-local scratch.**  Each worker keeps one objective alive
//!   (preallocated candidate schedule and curve buffers) and rebuilds it
//!   only when it crosses into a different measured loop's work, so a
//!   start costs zero steady-state allocations beyond its own arithmetic.
//! * **Lockstep routing.**  Under the default [`SoaRouting::Auto`], all of
//!   a loop's live starts descend together: every cost call evaluates the
//!   slot's surviving candidates as lanes of one structure-of-arrays sweep
//!   ([`CoordinateDescent::optimize_batch`]).  The `f64` lanes are
//!   bit-identical to the scalar objective, so routing never changes the
//!   report — only the throughput (asserted scalar-vs-SoA byte-identical
//!   by `tests/fit_determinism.rs`).
//! * **Determinism.**  Starting points are derived from `(seed, loop
//!   index)` before any thread spawns, every start is a pure function of
//!   its parameters, and results are re-sorted into (loop, start) order —
//!   a [`FitReport`] serialises byte-identically for any worker count
//!   (asserted at 1/2/8 workers by `tests/fit_determinism.rs`).

use std::time::{Duration, Instant};

use ja_hysteresis::error::JaError;
use ja_hysteresis::fitting::{
    starting_points, BatchObjective, CoordinateDescent, FitObjective, FitOptions, FitResult,
    LocalOptimizer,
};
use magnetics::bh::BhCurve;
use magnetics::loop_analysis::{loop_metrics, LoopMetrics};
use magnetics::material::JaParameters;

use crate::exec::{parallel_map, SoaRouting};

/// Options of a multi-start fit batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiStartOptions {
    /// Number of starting points per measured loop (start 0 is the
    /// deterministic initial guess, the rest are seeded latin-hypercube
    /// perturbations).
    pub starts: usize,
    /// Seed of the starting-point stream.  The same `(seed, loop index)`
    /// always generates the same starts, so reports are reproducible.
    pub seed: u64,
    /// Worker threads; `0` means one per available core.  The worker count
    /// never changes the results, only the wall-clock.
    pub workers: usize,
    /// The per-start local-search options.
    pub fit: FitOptions,
    /// How candidate evaluation is routed (see [`SoaRouting`]).  Under the
    /// default [`SoaRouting::Auto`], a loop with two or more starts runs
    /// its descents in lockstep — each cost call evaluates all live
    /// candidates as lanes of one structure-of-arrays sweep — with results
    /// bit-identical to the scalar path.  [`SoaRouting::ForceScalar`]
    /// restores one-objective-per-start scalar evaluation;
    /// [`SoaRouting::ForceSoa`] batches even a single start.
    pub routing: SoaRouting,
}

impl Default for MultiStartOptions {
    fn default() -> Self {
        Self {
            starts: 8,
            seed: 42,
            workers: 0,
            fit: FitOptions::default(),
            routing: SoaRouting::Auto,
        }
    }
}

impl MultiStartOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::InvalidConfig`] for `starts == 0`, a seed beyond
    /// `i64::MAX` (the versioned report serialises the seed as a JSON
    /// integer, so larger seeds could not be recorded faithfully), or
    /// invalid local-search options.
    pub fn validate(&self) -> Result<(), JaError> {
        if self.starts == 0 {
            return Err(JaError::InvalidConfig {
                name: "starts",
                value: 0.0,
                requirement: ">= 1 starting point",
            });
        }
        if i64::try_from(self.seed).is_err() {
            return Err(JaError::InvalidConfig {
                name: "seed",
                value: self.seed as f64,
                requirement: "<= i64::MAX (reports record the seed as a JSON integer)",
            });
        }
        self.fit.validate()
    }
}

/// One measured loop to fit.
#[derive(Debug, Clone)]
pub struct FitJob {
    /// Display name (used in fit reports; typically the input file stem or
    /// the material name).
    pub name: String,
    /// The measured BH loop.
    pub measured: BhCurve,
    /// Peak field of the measurement (A/m), used to regenerate candidate
    /// loops.
    pub h_peak: f64,
}

impl FitJob {
    /// Creates a job with an explicit peak field.
    pub fn new(name: impl Into<String>, measured: BhCurve, h_peak: f64) -> Self {
        Self {
            name: name.into(),
            measured,
            h_peak,
        }
    }

    /// Creates a job whose peak field is the measurement's own max |H|.
    pub fn with_auto_peak(name: impl Into<String>, measured: BhCurve) -> Self {
        let h_peak = measured
            .points()
            .iter()
            .fold(0.0_f64, |acc, p| acc.max(p.h.value().abs()));
        Self::new(name, measured, h_peak)
    }
}

/// The outcome of one starting point.
#[derive(Debug, Clone)]
pub struct StartFit {
    /// The starting parameter set the local search departed from.
    pub start: JaParameters,
    /// The refined result, or the error that stopped this start (other
    /// starts are unaffected — collect-all semantics, like scenario
    /// batches).
    pub result: Result<FitResult, JaError>,
    /// Objective evaluations this start consumed — also counted when the
    /// start failed (a failing evaluation still simulates), so the
    /// report's totals reflect the work actually done.
    pub evaluations: usize,
    /// Wall-clock time this start spent on its worker.
    pub wall_clock: Duration,
}

/// All starts of one measured loop, plus the best-of selection.
#[derive(Debug, Clone)]
pub struct LoopFit {
    /// Name of the fitted loop (from [`FitJob::name`]).
    pub name: String,
    /// Number of samples in the measured input.
    pub input_samples: usize,
    /// Peak field of the measurement (A/m).
    pub h_peak: f64,
    /// The measured loop metrics the fit matched.
    pub measured: LoopMetrics,
    /// One entry per starting point, in start order.
    pub starts: Vec<StartFit>,
    /// Index into [`starts`](Self::starts) of the lowest-cost successful
    /// start (first wins on exact ties); `None` when every start failed.
    pub best: Option<usize>,
}

impl LoopFit {
    /// The best start's fit result, if any start succeeded.
    pub fn best_fit(&self) -> Option<&FitResult> {
        self.starts[self.best?].result.as_ref().ok()
    }

    /// Total objective evaluations across all starts, failed ones
    /// included.
    pub fn evaluations(&self) -> usize {
        self.starts.iter().map(|s| s.evaluations).sum()
    }
}

/// Report of a multi-start fit batch.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// One entry per measured loop, in input order.
    pub loops: Vec<LoopFit>,
    /// Starting points per loop.
    pub starts: usize,
    /// Seed of the starting-point stream.
    pub seed: u64,
    /// Number of worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// `Some(lane count per loop)` when the batch ran through the
    /// structure-of-arrays lockstep path, `None` for the scalar path.
    /// Routing never changes result content (the `f64` lanes are
    /// bit-identical to scalar evaluation), so this is reported only in
    /// the opt-in timing block.
    pub lockstep_lanes: Option<usize>,
}

impl FitReport {
    /// Total per-start wall-clock across all loops — the time a
    /// single-worker run would have spent fitting.
    pub fn serial_runtime(&self) -> Duration {
        self.loops
            .iter()
            .flat_map(|l| &l.starts)
            .map(|s| s.wall_clock)
            .sum()
    }

    /// Aggregate speedup estimate: [`serial_runtime`](Self::serial_runtime)
    /// over [`elapsed`](Self::elapsed) (0 when the batch was empty or too
    /// fast to measure).
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed > 0.0 {
            self.serial_runtime().as_secs_f64() / elapsed
        } else {
            0.0
        }
    }
}

/// One (loop, start) unit of scalar work.
struct FitTask {
    job: usize,
    params: JaParameters,
}

/// Worker-local scratch of the scalar path: the current job's
/// [`FitObjective`], rebuilt only on a job change (tasks are job-major, so
/// a worker crosses loops rarely).
struct FitScratch {
    cached: Option<(usize, FitObjective)>,
}

/// Worker-local scratch of the lockstep path: the current job's
/// [`BatchObjective`] — schedule samples, SoA columns and per-lane curve
/// buffers shared by every cost call of that loop's descents.
struct SoaFitScratch {
    cached: Option<(usize, BatchObjective)>,
}

/// Fits every measured loop with `options.starts` seeded starting points,
/// fanned across the worker pool, and keeps the best result per loop.
///
/// # Errors
///
/// Returns [`JaError::EmptyGrid`] for an empty job list,
/// [`JaError::InvalidConfig`] for invalid options, and
/// [`JaError::Material`] when a measured input is not a closed loop — all
/// detected up front, before any worker spawns.  Failures of individual
/// *starts* are recorded in the report instead (collect-all semantics).
pub fn fit_batch(jobs: Vec<FitJob>, options: &MultiStartOptions) -> Result<FitReport, JaError> {
    options.validate()?;
    if jobs.is_empty() {
        return Err(JaError::EmptyGrid { axis: "loops" });
    }

    // Up-front, per loop: target metrics (the fatal input check) and the
    // deterministic starting points.  Seeds are decorrelated per loop so a
    // library fit does not reuse one loop's perturbations for the next.
    let mut targets = Vec::with_capacity(jobs.len());
    let mut loop_starts: Vec<Vec<JaParameters>> = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        let target = loop_metrics(&job.measured)?;
        let seed = options
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        loop_starts.push(starting_points(&target, options.starts, seed)?);
        targets.push(target);
    }

    let lockstep = match options.routing {
        SoaRouting::ForceScalar => false,
        SoaRouting::ForceSoa => true,
        // A single start has no lane parallelism to harvest; keep the
        // scalar path's per-start work distribution.
        SoaRouting::Auto => options.starts >= 2,
    };
    // The report's worker count is resolved against the start count under
    // both routings, so a scalar and a lockstep run of the same batch stay
    // report-identical (the lockstep path simply caps its pool at one
    // worker per loop).
    let workers = crate::exec::resolved_workers(options.workers, jobs.len() * options.starts);
    let optimizer = CoordinateDescent::from_options(&options.fit);
    let started = Instant::now();
    let results = if lockstep {
        run_lockstep(&jobs, &targets, &loop_starts, options, workers, &optimizer)
    } else {
        run_scalar(&jobs, &targets, &loop_starts, options, workers, &optimizer)
    };
    let elapsed = started.elapsed();

    let mut start_entries = loop_starts.iter().flatten().zip(results).map(
        |(params, (result, evaluations, wall_clock))| StartFit {
            start: *params,
            result,
            evaluations,
            wall_clock,
        },
    );
    let loops = jobs
        .into_iter()
        .zip(targets)
        .map(|(job, measured)| {
            let starts: Vec<StartFit> = start_entries.by_ref().take(options.starts).collect();
            let best = starts
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.result.as_ref().ok().map(|r| (i, r.cost)))
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i);
            LoopFit {
                name: job.name,
                input_samples: job.measured.len(),
                h_peak: job.h_peak,
                measured,
                starts,
                best,
            }
        })
        .collect();

    Ok(FitReport {
        loops,
        starts: options.starts,
        seed: options.seed,
        workers,
        elapsed,
        lockstep_lanes: if lockstep { Some(options.starts) } else { None },
    })
}

/// Scalar routing: one `(loop, start)` task per worker slot, each start a
/// fully independent coordinate descent.  Results come back flattened in
/// (loop, start) order.
fn run_scalar(
    jobs: &[FitJob],
    targets: &[LoopMetrics],
    loop_starts: &[Vec<JaParameters>],
    options: &MultiStartOptions,
    workers: usize,
    optimizer: &CoordinateDescent,
) -> Vec<(Result<FitResult, JaError>, usize, Duration)> {
    let mut tasks = Vec::with_capacity(jobs.len() * options.starts);
    for (index, starts) in loop_starts.iter().enumerate() {
        for &params in starts {
            tasks.push(FitTask { job: index, params });
        }
    }
    parallel_map(
        &tasks,
        workers,
        1,
        || FitScratch { cached: None },
        |task, scratch| {
            let t0 = Instant::now();
            let (result, evaluations) =
                match objective_for(scratch, task.job, jobs, targets, options) {
                    Ok(objective) => {
                        let before = objective.evaluations();
                        let result = optimizer.optimize(objective, task.params);
                        (result, objective.evaluations() - before)
                    }
                    Err(err) => (Err(err), 0),
                };
            (result, evaluations, t0.elapsed())
        },
    )
}

/// Lockstep routing: one task per *loop*; all of the loop's starts descend
/// together through [`CoordinateDescent::optimize_batch`], each cost call
/// evaluating the live candidates as lanes of one structure-of-arrays
/// sweep.  Per-start results and evaluation counts match the scalar path
/// bit-for-bit; the loop's wall-clock is split evenly across its starts so
/// the report's serial-runtime estimate stays comparable.
fn run_lockstep(
    jobs: &[FitJob],
    targets: &[LoopMetrics],
    loop_starts: &[Vec<JaParameters>],
    options: &MultiStartOptions,
    workers: usize,
    optimizer: &CoordinateDescent,
) -> Vec<(Result<FitResult, JaError>, usize, Duration)> {
    let tasks: Vec<usize> = (0..jobs.len()).collect();
    let per_loop = parallel_map(
        &tasks,
        workers.min(jobs.len()),
        1,
        || SoaFitScratch { cached: None },
        |&job, scratch| {
            let starts = &loop_starts[job];
            let t0 = Instant::now();
            let (results, built) = match batch_objective_for(scratch, job, jobs, targets, options) {
                Ok(objective) => (optimizer.optimize_batch(objective, starts), true),
                Err(err) => (starts.iter().map(|_| Err(err.clone())).collect(), false),
            };
            let share = t0.elapsed() / starts.len().max(1) as u32;
            results
                .into_iter()
                .map(|result| {
                    // A start that failed its initial evaluation consumed
                    // exactly one evaluation — same accounting as scalar; a
                    // batch that never built its objective consumed none.
                    let evaluations = match &result {
                        Ok(fit) => fit.evaluations,
                        Err(_) => usize::from(built),
                    };
                    (result, evaluations, share)
                })
                .collect::<Vec<_>>()
        },
    );
    per_loop.into_iter().flatten().collect()
}

/// The objective for `job`, rebuilt only when the worker's cached one
/// belongs to a different loop.  Rebuilds start from the already-extracted
/// target metrics ([`FitObjective::from_target`]) instead of re-running
/// `loop_metrics` over the measured curve.
fn objective_for<'s>(
    scratch: &'s mut FitScratch,
    job: usize,
    jobs: &[FitJob],
    targets: &[LoopMetrics],
    options: &MultiStartOptions,
) -> Result<&'s mut FitObjective, JaError> {
    // (match instead of `Option::is_none_or`: the workspace MSRV is 1.78.)
    let stale = match &scratch.cached {
        Some((cached, _)) => *cached != job,
        None => true,
    };
    if stale {
        let objective = FitObjective::from_target(targets[job], jobs[job].h_peak, &options.fit)?;
        scratch.cached = Some((job, objective));
    }
    Ok(&mut scratch.cached.as_mut().expect("just filled").1)
}

/// The lockstep analogue of [`objective_for`]: the [`BatchObjective`] for
/// `job`, rebuilt only when the worker's cached one belongs to a different
/// loop.  Within a loop the cached objective's schedule samples, SoA
/// columns and per-lane curve buffers are shared by every cost call of the
/// descents, so the steady state allocates nothing per call.
fn batch_objective_for<'s>(
    scratch: &'s mut SoaFitScratch,
    job: usize,
    jobs: &[FitJob],
    targets: &[LoopMetrics],
    options: &MultiStartOptions,
) -> Result<&'s mut BatchObjective, JaError> {
    // (match instead of `Option::is_none_or`: the workspace MSRV is 1.78.)
    let stale = match &scratch.cached {
        Some((cached, _)) => *cached != job,
        None => true,
    };
    if stale {
        let objective = BatchObjective::from_target(targets[job], jobs[job].h_peak, &options.fit)?;
        scratch.cached = Some((job, objective));
    }
    Ok(&mut scratch.cached.as_mut().expect("just filled").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ja_hysteresis::backend::HysteresisBackend;
    use ja_hysteresis::model::JilesAtherton;
    use waveform::schedule::FieldSchedule;

    fn measured_loop(params: JaParameters, step: f64) -> BhCurve {
        let mut model = JilesAtherton::new(params).unwrap();
        let schedule = FieldSchedule::major_loop(10_000.0, step, 2).unwrap();
        model.run_schedule(&schedule).unwrap()
    }

    fn quick_options(starts: usize, workers: usize) -> MultiStartOptions {
        MultiStartOptions {
            starts,
            workers,
            fit: FitOptions {
                passes: 2,
                sweep_step: 250.0,
                ..FitOptions::default()
            },
            ..MultiStartOptions::default()
        }
    }

    #[test]
    fn best_of_multi_start_is_no_worse_than_the_single_start() {
        let measured = measured_loop(JaParameters::date2006(), 100.0);
        let job = || FitJob::with_auto_peak("date2006", measured.clone());
        assert_eq!(job().h_peak, 10_000.0);

        let single = fit_batch(vec![job()], &quick_options(1, 1)).unwrap();
        let multi = fit_batch(vec![job()], &quick_options(6, 0)).unwrap();
        let single_best = single.loops[0].best_fit().unwrap();
        let multi_best = multi.loops[0].best_fit().unwrap();
        // Start 0 of the multi-start run IS the single-start run, so
        // best-of can only improve on it.
        let start0 = multi.loops[0].starts[0].result.as_ref().unwrap();
        assert_eq!(start0.cost.to_bits(), single_best.cost.to_bits());
        assert!(multi_best.cost <= single_best.cost);
        assert_eq!(multi.loops[0].starts.len(), 6);
        assert!(multi.loops[0].evaluations() > single.loops[0].evaluations());
        assert_eq!(multi.starts, 6);
        assert!(multi.serial_runtime() >= Duration::ZERO);
        assert!(multi.speedup() >= 0.0);
    }

    #[test]
    fn results_are_bitwise_identical_across_worker_counts() {
        let jobs = || {
            vec![
                FitJob::with_auto_peak("date2006", measured_loop(JaParameters::date2006(), 250.0)),
                FitJob::with_auto_peak(
                    "hard-steel",
                    measured_loop(JaParameters::hard_steel(), 250.0),
                ),
            ]
        };
        let serial = fit_batch(jobs(), &quick_options(4, 1)).unwrap();
        let parallel = fit_batch(jobs(), &quick_options(4, 8)).unwrap();
        assert_eq!(serial.workers, 1);
        assert_eq!(serial.loops.len(), 2);
        for (a, b) in serial.loops.iter().zip(&parallel.loops) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.best, b.best);
            for (x, y) in a.starts.iter().zip(&b.starts) {
                assert_eq!(x.start, y.start);
                let (rx, ry) = (x.result.as_ref().unwrap(), y.result.as_ref().unwrap());
                assert_eq!(rx.cost.to_bits(), ry.cost.to_bits());
                assert_eq!(rx.params, ry.params);
                assert_eq!(rx.evaluations, ry.evaluations);
            }
        }
        // The two loops got different perturbed starts (decorrelated seeds).
        assert_ne!(
            serial.loops[0].starts[1].start,
            serial.loops[1].starts[1].start
        );
    }

    #[test]
    fn invalid_inputs_fail_before_any_fitting() {
        let err = fit_batch(Vec::new(), &MultiStartOptions::default()).unwrap_err();
        assert!(matches!(err, JaError::EmptyGrid { axis: "loops" }));

        let options = MultiStartOptions {
            starts: 0,
            ..MultiStartOptions::default()
        };
        let job = FitJob::with_auto_peak("x", measured_loop(JaParameters::date2006(), 250.0));
        let err = fit_batch(vec![job], &options).unwrap_err();
        assert!(matches!(err, JaError::InvalidConfig { name: "starts", .. }));

        // A non-loop input is fatal for the whole batch, up front.
        let mut ramp = BhCurve::new();
        for i in 0..100 {
            ramp.push_raw(i as f64 * 10.0, (i as f64 / 50.0).tanh(), 0.0);
        }
        let err = fit_batch(
            vec![FitJob::with_auto_peak("ramp", ramp)],
            &quick_options(2, 1),
        )
        .unwrap_err();
        assert!(matches!(err, JaError::Material(_)));
    }
}
