//! Signal values.

use std::fmt;

use crate::error::KernelError;

/// The value carried by a signal.
///
/// The paper's model only needs real-valued signals (`H`, `M`, `B`) and
/// bit-like flags (`hchanged`, `trig`), so the kernel supports exactly
/// those plus integers for counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A real (analogue) value.
    Real(f64),
    /// A single-bit value.
    Bit(bool),
    /// An integer value.
    Int(i64),
}

impl Value {
    /// Name of the kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Real(_) => "real",
            Value::Bit(_) => "bit",
            Value::Int(_) => "int",
        }
    }

    /// Extracts a real value.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::TypeMismatch`] if the value is not real.
    #[inline]
    pub fn as_real(&self) -> Result<f64, KernelError> {
        match self {
            Value::Real(v) => Ok(*v),
            other => Err(KernelError::TypeMismatch {
                expected: "real",
                found: other.kind(),
            }),
        }
    }

    /// Extracts a bit value.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::TypeMismatch`] if the value is not a bit.
    #[inline]
    pub fn as_bit(&self) -> Result<bool, KernelError> {
        match self {
            Value::Bit(v) => Ok(*v),
            other => Err(KernelError::TypeMismatch {
                expected: "bit",
                found: other.kind(),
            }),
        }
    }

    /// Extracts an integer value.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::TypeMismatch`] if the value is not an integer.
    #[inline]
    pub fn as_int(&self) -> Result<i64, KernelError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(KernelError::TypeMismatch {
                expected: "int",
                found: other.kind(),
            }),
        }
    }

    /// Whether two values differ for the purpose of change detection.
    /// Reals compare exactly (a delta-cycle write of an identical value does
    /// not constitute an event, matching SystemC's `sc_signal` semantics).
    #[inline]
    pub fn differs_from(&self, other: &Value) -> bool {
        self != other
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Real(v) => write!(f, "{v}"),
            Value::Bit(v) => write!(f, "{}", if *v { 1 } else { 0 }),
            Value::Int(v) => write!(f, "{v}"),
        }
    }
}

impl From<f64> for Value {
    fn from(value: f64) -> Self {
        Value::Real(value)
    }
}

impl From<bool> for Value {
    fn from(value: bool) -> Self {
        Value::Bit(value)
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_kind() {
        assert_eq!(Value::Real(1.5).as_real().unwrap(), 1.5);
        assert!(Value::Real(1.5).as_bit().is_err());
        assert!(Value::Bit(true).as_bit().unwrap());
        assert!(Value::Bit(true).as_int().is_err());
        assert_eq!(Value::Int(-3).as_int().unwrap(), -3);
        assert!(Value::Int(-3).as_real().is_err());
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Real(0.0).kind(), "real");
        assert_eq!(Value::Bit(false).kind(), "bit");
        assert_eq!(Value::Int(0).kind(), "int");
    }

    #[test]
    fn change_detection() {
        assert!(Value::Real(1.0).differs_from(&Value::Real(2.0)));
        assert!(!Value::Real(1.0).differs_from(&Value::Real(1.0)));
        assert!(Value::Real(1.0).differs_from(&Value::Bit(true)));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(2.0), Value::Real(2.0));
        assert_eq!(Value::from(true), Value::Bit(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::Real(2.5).to_string(), "2.5");
        assert_eq!(Value::Bit(true).to_string(), "1");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
