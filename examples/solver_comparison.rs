//! Timeless discretisation versus solver-integrated baseline (experiments
//! E4/E5): stability at the turning points and work spent, as a function of
//! the time step handed to the analogue solver.
//!
//! Run with: `cargo run --example solver_comparison`

use std::error::Error;
use std::time::Instant;

use ja_repro::hdl_models::ams::{AmsTimelessModel, SolverIntegratedBaseline, SolverMethod};
use ja_repro::hdl_models::comparison::turning_point_comparison;
use ja_repro::ja_hysteresis::config::JaConfig;
use ja_repro::magnetics::material::JaParameters;
use ja_repro::waveform::triangular::Triangular;

fn main() -> Result<(), Box<dyn Error>> {
    println!("== turning-point stability (E4): timeless vs backward-Euler baseline ==");
    println!("dt [s]      timeless Bmax  baseline Bmax  overshoot  newton its  non-conv  neg.slope (baseline)");
    for &dt in &[2.0 / 16_000.0, 2.0 / 8_000.0, 2.0 / 4_000.0, 2.0 / 2_000.0, 2.0 / 1_000.0] {
        let report = turning_point_comparison(dt, SolverMethod::BackwardEuler)?;
        println!(
            "{:<10.2e}  {:>12.3}  {:>12.3}  {:>8.3}  {:>10}  {:>8}  {:>10}",
            report.dt,
            report.timeless_b_max,
            report.baseline_b_max,
            report.baseline_overshoot,
            report.baseline_newton_iterations,
            report.baseline_non_converged,
            report.baseline_negative_samples,
        );
    }

    println!("\n== runtime comparison (E5): one full cycle of the paper's sweep ==");
    let waveform = Triangular::new(10_000.0, 1.0)?;
    let params = JaParameters::date2006();
    let dt = 2.0 / 8_000.0;

    let start = Instant::now();
    let mut timeless = AmsTimelessModel::new(params, JaConfig::default())?;
    let curve = timeless.run_transient(&waveform, 2.0, dt)?;
    let timeless_elapsed = start.elapsed();
    println!(
        "  timeless model      : {:>9.3} ms, {} slope evaluations, {} samples",
        timeless_elapsed.as_secs_f64() * 1e3,
        timeless.model().statistics().slope_evaluations,
        curve.len()
    );

    let baseline = SolverIntegratedBaseline::new(params, JaConfig::default())?;
    for (name, method) in [
        ("forward Euler (time)", SolverMethod::ForwardEuler),
        ("backward Euler      ", SolverMethod::BackwardEuler),
        ("trapezoidal         ", SolverMethod::Trapezoidal),
        ("adaptive RKF45      ", SolverMethod::AdaptiveRkf45 { rel_tol: 1e-6 }),
    ] {
        let start = Instant::now();
        let result = baseline.run(&waveform, 2.0, dt, method)?;
        let elapsed = start.elapsed();
        println!(
            "  baseline {name}: {:>9.3} ms, {} rhs evaluations, {} newton iterations",
            elapsed.as_secs_f64() * 1e3,
            result.rhs_evaluations,
            result.newton_iterations
        );
    }
    Ok(())
}
