//! Adaptive Runge–Kutta–Fehlberg 4(5) integration.
//!
//! Commercial AMS simulators use variable-step integration with local
//! truncation error control; this embedded RK pair reproduces that
//! behaviour, including the characteristic step-size collapse around the
//! slope discontinuities of the hysteresis model (measured in experiment
//! E4).

use crate::error::SolverError;
use crate::ode::{OdeSystem, Trajectory};

/// Options for the adaptive integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative error tolerance per step.
    pub rel_tol: f64,
    /// Absolute error tolerance per step.
    pub abs_tol: f64,
    /// Initial step size.
    pub initial_step: f64,
    /// Smallest step the controller may use before giving up.
    pub min_step: f64,
    /// Largest step the controller may take.
    pub max_step: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
            initial_step: 1e-6,
            min_step: 1e-15,
            max_step: 1e-2,
        }
    }
}

impl AdaptiveOptions {
    /// Validates the options, naming the offending field — the one rule
    /// set shared by every adaptive consumer ([`Rkf45`] and the circuit
    /// transient engine).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidStep`] naming the first invalid
    /// field: `initial_step`/`min_step`/`abs_tol` must be finite and
    /// positive, `max_step >= min_step`, `rel_tol` finite and
    /// non-negative.
    pub fn validate(&self) -> Result<(), SolverError> {
        fn positive(value: f64) -> bool {
            value.is_finite() && value > 0.0
        }
        let checks: [(&'static str, f64, bool); 5] = [
            (
                "initial_step",
                self.initial_step,
                positive(self.initial_step),
            ),
            ("min_step", self.min_step, positive(self.min_step)),
            ("max_step", self.max_step, self.max_step >= self.min_step),
            ("abs_tol", self.abs_tol, positive(self.abs_tol)),
            (
                "rel_tol",
                self.rel_tol,
                self.rel_tol.is_finite() && self.rel_tol >= 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(SolverError::InvalidStep { name, value });
            }
        }
        Ok(())
    }
}

/// Result of an adaptive run: the trajectory plus step-control statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    /// The accepted trajectory.
    pub trajectory: Trajectory,
    /// Number of accepted steps.
    pub accepted_steps: usize,
    /// Number of rejected (re-tried) steps.
    pub rejected_steps: usize,
    /// Smallest step size actually used.
    pub min_step_used: f64,
}

/// Embedded Runge–Kutta–Fehlberg 4(5) integrator with proportional step
/// control.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rkf45 {
    /// Step-control options.
    pub options: AdaptiveOptions,
}

// Fehlberg coefficients.
const A: [[f64; 5]; 5] = [
    [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
    [
        -8.0 / 27.0,
        2.0,
        -3544.0 / 2565.0,
        1859.0 / 4104.0,
        -11.0 / 40.0,
    ],
];
const C: [f64; 6] = [0.0, 0.25, 0.375, 12.0 / 13.0, 1.0, 0.5];
const B5: [f64; 6] = [
    16.0 / 135.0,
    0.0,
    6656.0 / 12825.0,
    28561.0 / 56430.0,
    -9.0 / 50.0,
    2.0 / 55.0,
];
const B4: [f64; 6] = [
    25.0 / 216.0,
    0.0,
    1408.0 / 2565.0,
    2197.0 / 4104.0,
    -1.0 / 5.0,
    0.0,
];

impl Rkf45 {
    /// Creates an integrator with custom options.
    pub fn new(options: AdaptiveOptions) -> Self {
        Self { options }
    }

    /// Integrates `system` from `t0` to `t_end`, adapting the step size to
    /// the local truncation error.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::BadStateLength`] for a mismatched initial
    /// state, [`SolverError::InvalidStep`] for invalid options and
    /// [`SolverError::StepSizeUnderflow`] when the tolerance cannot be met
    /// even at the minimum step size.
    pub fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
    ) -> Result<AdaptiveResult, SolverError> {
        let n = system.dim();
        if y0.len() != n {
            return Err(SolverError::BadStateLength {
                expected: n,
                actual: y0.len(),
            });
        }
        let opts = &self.options;
        opts.validate()?;
        if t_end < t0 || !t0.is_finite() || !t_end.is_finite() {
            return Err(SolverError::InvalidStep {
                name: "t_end",
                value: t_end,
            });
        }

        let mut times = vec![t0];
        let mut states = vec![y0.to_vec()];
        let mut y = y0.to_vec();
        let mut t = t0;
        let mut h = opts.initial_step.min(opts.max_step);
        let mut evals = 0usize;
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let mut min_step_used = f64::INFINITY;

        let mut k = vec![vec![0.0; n]; 6];
        let mut stage = vec![0.0; n];

        while t < t_end {
            h = h.min(t_end - t).min(opts.max_step);
            if h < opts.min_step {
                return Err(SolverError::StepSizeUnderflow { time: t, step: h });
            }
            // Evaluate the six stages.
            system.rhs(t, &y, &mut k[0]);
            for s in 1..6 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, kj) in k.iter().enumerate().take(s) {
                        acc += A[s - 1][j] * kj[i];
                    }
                    stage[i] = y[i] + h * acc;
                }
                system.rhs(t + C[s] * h, &stage, &mut k[s]);
            }
            evals += 6;

            // Fifth- and fourth-order solutions and the error estimate.
            let mut error_norm: f64 = 0.0;
            let mut y5 = vec![0.0; n];
            for i in 0..n {
                let mut acc5 = 0.0;
                let mut acc4 = 0.0;
                for (s, ks) in k.iter().enumerate() {
                    acc5 += B5[s] * ks[i];
                    acc4 += B4[s] * ks[i];
                }
                y5[i] = y[i] + h * acc5;
                let y4 = y[i] + h * acc4;
                let scale = opts.abs_tol + opts.rel_tol * y5[i].abs().max(y[i].abs());
                error_norm = error_norm.max(((y5[i] - y4) / scale).abs());
            }

            if error_norm <= 1.0 {
                // Accept.
                t += h;
                y = y5;
                times.push(t);
                states.push(y.clone());
                accepted += 1;
                min_step_used = min_step_used.min(h);
            } else {
                rejected += 1;
            }

            // Proportional controller with safety factor.
            let factor = if error_norm > 0.0 {
                0.9 * error_norm.powf(-0.2)
            } else {
                5.0
            };
            h *= factor.clamp(0.1, 5.0);
        }

        Ok(AdaptiveResult {
            trajectory: Trajectory::new(times, states, evals),
            accepted_steps: accepted,
            rejected_steps: rejected,
            min_step_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -y[0];
        }
    }

    /// A system with a sharp corner in its derivative at t = 0.5, similar
    /// to the slope discontinuity at a field turning point.
    struct Corner;
    impl OdeSystem for Corner {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, t: f64, _y: &[f64], dydt: &mut [f64]) {
            dydt[0] = if t < 0.5 { 1.0 } else { -1.0 };
        }
    }

    #[test]
    fn accurate_on_smooth_problem() {
        let result = Rkf45::default()
            .integrate(&Decay, &[1.0], 0.0, 1.0)
            .unwrap();
        let y_end = result.trajectory.last_state()[0];
        assert!((y_end - (-1.0_f64).exp()).abs() < 1e-6);
        assert!(result.accepted_steps > 0);
        assert!(result.min_step_used > 0.0);
    }

    #[test]
    fn corner_forces_smaller_steps() {
        let options = AdaptiveOptions {
            initial_step: 0.05,
            max_step: 0.2,
            ..Default::default()
        };
        let result = Rkf45::new(options)
            .integrate(&Corner, &[0.0], 0.0, 1.0)
            .unwrap();
        // The peak value should be close to 0.5 and the end close to 0.
        let peak = result
            .trajectory
            .component(0)
            .into_iter()
            .fold(f64::MIN, f64::max);
        assert!((peak - 0.5).abs() < 0.06, "peak = {peak}");
    }

    #[test]
    fn tolerance_controls_step_count() {
        let loose = Rkf45::new(AdaptiveOptions {
            rel_tol: 1e-3,
            abs_tol: 1e-6,
            ..AdaptiveOptions::default()
        })
        .integrate(&Decay, &[1.0], 0.0, 1.0)
        .unwrap();
        let tight = Rkf45::new(AdaptiveOptions {
            rel_tol: 1e-10,
            abs_tol: 1e-12,
            ..AdaptiveOptions::default()
        })
        .integrate(&Decay, &[1.0], 0.0, 1.0)
        .unwrap();
        assert!(tight.accepted_steps >= loose.accepted_steps);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Rkf45::default()
            .integrate(&Decay, &[1.0, 2.0], 0.0, 1.0)
            .is_err());
        let bad = Rkf45::new(AdaptiveOptions {
            initial_step: 0.0,
            ..AdaptiveOptions::default()
        });
        assert!(bad.integrate(&Decay, &[1.0], 0.0, 1.0).is_err());
        assert!(Rkf45::default()
            .integrate(&Decay, &[1.0], 1.0, 0.0)
            .is_err());
    }

    #[test]
    fn underflow_reported_when_tolerance_impossible() {
        struct Nasty;
        impl OdeSystem for Nasty {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&self, t: f64, _y: &[f64], dydt: &mut [f64]) {
                // Derivative oscillates wildly within any interval: the
                // error estimate never settles below tolerance.
                dydt[0] = if (t * 1e12).sin() > 0.0 { 1e12 } else { -1e12 };
            }
        }
        let integrator = Rkf45::new(AdaptiveOptions {
            rel_tol: 1e-14,
            abs_tol: 1e-16,
            initial_step: 1e-3,
            min_step: 1e-9,
            max_step: 1e-2,
        });
        let result = integrator.integrate(&Nasty, &[0.0], 0.0, 1.0);
        assert!(matches!(
            result,
            Err(SolverError::StepSizeUnderflow { .. }) | Ok(_)
        ));
    }
}
