//! Physical constants used throughout the magnetic models.

/// Permeability of free space, µ0, in henry per metre (T·m/A).
///
/// The paper's SystemC code uses the same constant (`MU0`) to convert the
/// total magnetisation and applied field into flux density:
/// `B = µ0 · (H + M)`.
pub const MU0: f64 = 4.0e-7 * std::f64::consts::PI;

/// Reciprocal of [`MU0`], in A/(T·m). Handy when converting a flux density
/// contribution back into an equivalent field strength.
pub const INV_MU0: f64 = 1.0 / MU0;

/// Conversion factor from kA/m to A/m (the paper's Fig. 1 x-axis is in kA/m).
pub const KILO_AMPERE_PER_METER: f64 = 1.0e3;

/// Conversion factor from MA/m to A/m (the paper quotes `Msat = 1.6 MA/m`).
pub const MEGA_AMPERE_PER_METER: f64 = 1.0e6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu0_matches_si_value() {
        assert!((MU0 - 1.256_637_061_4e-6).abs() < 1e-15);
    }

    #[test]
    fn inv_mu0_is_reciprocal() {
        assert!((MU0 * INV_MU0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_flux_density_of_paper_material_is_about_two_tesla() {
        // Msat = 1.6 MA/m  =>  Bsat ~ µ0 * Msat ~ 2.01 T, matching the ±2 T
        // extent of Fig. 1 in the paper.
        let b_sat = MU0 * 1.6 * MEGA_AMPERE_PER_METER;
        assert!(b_sat > 1.9 && b_sat < 2.1);
    }
}
