//! Backend-agnostic driving API: one trait in front of every hysteresis
//! implementation.
//!
//! The repository carries four parallel implementations of the paper's
//! technique and its baseline — the direct library model
//! ([`JilesAtherton`]), the conventional time-domain formulation
//! ([`TimeDomainBackend`]), and the SystemC-style and AMS-style HDL models
//! in the `hdl-models` crate.  [`HysteresisBackend`] is the seam that lets
//! equivalence tests, benches and the scenario engine drive any of them
//! through one polymorphic API: feed a field sample in, get a
//! [`JaSample`] out, read the cost counters back as [`JaStatistics`].
//!
//! The trait is object-safe, so backends can be collected in
//! `Vec<Box<dyn HysteresisBackend>>` and run over the same stimulus grid.

use magnetics::anhysteretic::{Anhysteretic, AnhystereticKind};
use magnetics::bh::BhCurve;
use magnetics::constants::MU0;
use magnetics::material::JaParameters;
use magnetics::units::{FieldStrength, FluxDensity, Magnetisation};
use waveform::schedule::FieldSchedule;

use crate::config::JaConfig;
use crate::error::JaError;
use crate::model::{JaSample, JaStatistics, JilesAtherton};
use crate::slope::{evaluate_total_slope, FieldDirection};

/// Cost counters of an event-driven backend's simulation kernel.
///
/// Where [`JaStatistics`] counts *model* work (integration steps, slope
/// evaluations), these counters expose the *substrate* work of a
/// discrete-event backend: how many delta cycles the kernel ran, how many
/// timed events it scheduled, and how many process activations it executed.
/// They are deterministic outcomes of the stimulus — not timings — but
/// reports still gate them behind the opt-in timings block because only
/// event-driven backends produce them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStatistics {
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Timed events scheduled (testbench stimulus plus process wake-ups).
    pub events_scheduled: u64,
    /// Method-process activations executed.
    pub process_activations: u64,
}

/// A hysteresis model that can be driven sample-by-sample with applied
/// field values.
///
/// All four implementation styles of the repository stand behind this
/// trait; the provided methods give every backend uniform sweep drivers.
pub trait HysteresisBackend {
    /// A short, stable, human-readable backend name (used in reports and
    /// error messages).
    fn label(&self) -> &'static str;

    /// Applies a new value of the external field (A/m) and returns the
    /// resulting sample.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::NonFiniteField`] for a NaN/infinite field,
    /// [`JaError::StateDiverged`] if the state stops being finite, and
    /// [`JaError::Backend`] for substrate failures.
    fn apply_field(&mut self, h: f64) -> Result<JaSample, JaError>;

    /// Cumulative cost counters since construction or the last
    /// [`reset`](HysteresisBackend::reset).
    fn statistics(&self) -> JaStatistics;

    /// Returns the backend to the demagnetised state and clears the
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Backend`] if the substrate cannot be restored
    /// (event-kernel backends rewind their kernel in place — signals back
    /// to initial values, queues and counters cleared — keeping the process
    /// network and its allocations alive for the next scenario).
    fn reset(&mut self) -> Result<(), JaError>;

    /// Kernel cost counters since construction or the last
    /// [`reset`](HysteresisBackend::reset) — `Some` only for event-driven
    /// backends; equation-style backends have no kernel and return `None`
    /// (the default).
    fn kernel_statistics(&self) -> Option<KernelStatistics> {
        None
    }

    /// Drives the backend through an explicit sequence of field samples and
    /// collects the BH trace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`apply_field`](HysteresisBackend::apply_field)
    /// error.
    fn run_samples(&mut self, samples: &[f64]) -> Result<BhCurve, JaError> {
        let mut curve = BhCurve::with_capacity(samples.len());
        self.run_samples_into(samples, &mut curve)?;
        Ok(curve)
    }

    /// Like [`run_samples`](HysteresisBackend::run_samples), but fills a
    /// caller-provided curve: the curve is cleared, its allocation is kept,
    /// and exactly one point per field sample is appended.  For callers
    /// that run many sweeps and keep only derived metrics (benches,
    /// fitting loops) — the scenario executor cannot use it, since every
    /// [`BhCurve`] it produces is retained in the outcome.
    ///
    /// # Errors
    ///
    /// Propagates the first [`apply_field`](HysteresisBackend::apply_field)
    /// error; the curve then holds the samples up to the failure.
    fn run_samples_into(&mut self, samples: &[f64], curve: &mut BhCurve) -> Result<(), JaError> {
        curve.clear();
        curve.reserve(samples.len());
        for &h in samples {
            let sample = self.apply_field(h)?;
            curve.push_raw(sample.h.value(), sample.b.as_tesla(), sample.m.value());
        }
        Ok(())
    }

    /// Drives the backend through every sample of a timeless field
    /// schedule and collects the BH trace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`apply_field`](HysteresisBackend::apply_field)
    /// error.
    fn run_schedule(&mut self, schedule: &FieldSchedule) -> Result<BhCurve, JaError> {
        let mut curve = BhCurve::with_capacity(schedule.len());
        self.run_schedule_into(schedule, &mut curve)?;
        Ok(curve)
    }

    /// Like [`run_schedule`](HysteresisBackend::run_schedule), but fills a
    /// caller-provided curve (cleared first, allocation kept).
    ///
    /// # Errors
    ///
    /// Propagates the first [`apply_field`](HysteresisBackend::apply_field)
    /// error; the curve then holds the samples up to the failure.
    fn run_schedule_into(
        &mut self,
        schedule: &FieldSchedule,
        curve: &mut BhCurve,
    ) -> Result<(), JaError> {
        curve.clear();
        curve.reserve(schedule.len());
        for h in schedule.iter() {
            let sample = self.apply_field(h)?;
            curve.push_raw(sample.h.value(), sample.b.as_tesla(), sample.m.value());
        }
        Ok(())
    }
}

impl HysteresisBackend for JilesAtherton {
    fn label(&self) -> &'static str {
        "direct-timeless"
    }

    fn apply_field(&mut self, h: f64) -> Result<JaSample, JaError> {
        JilesAtherton::apply_field(self, h)
    }

    fn statistics(&self) -> JaStatistics {
        JilesAtherton::statistics(self)
    }

    fn reset(&mut self) -> Result<(), JaError> {
        JilesAtherton::reset(self);
        Ok(())
    }
}

/// The conventional time-domain formulation driven through the sample API —
/// the "previous work" baseline expressed as a backend.
///
/// Where the timeless backends integrate over the *field* and gate updates
/// on `ΔH_max`, this backend does what a solver-integrated model does on
/// every solver step: it advances the total magnetisation by
/// `ΔM = dM/dH · ΔH` at **every** sample, with the slope discontinuity at
/// field reversals left in place.  Driving it with the same schedule as a
/// timeless backend therefore reproduces the baseline's per-step behaviour
/// without an analogue solver in the loop (the solver's own failure modes —
/// Newton non-convergence, step-size collapse — are exercised separately by
/// `hdl-models::ams::SolverIntegratedBaseline`).
#[derive(Debug, Clone)]
pub struct TimeDomainBackend {
    params: JaParameters,
    anhysteretic: AnhystereticKind,
    clamp_negative_slope: bool,
    m_total: f64,
    h_last: f64,
    has_sample: bool,
    stats: JaStatistics,
}

impl TimeDomainBackend {
    /// Creates the backend from a material and configuration (the
    /// configuration contributes the anhysteretic law and the slope clamp;
    /// `ΔH_max` is deliberately ignored — this formulation updates on every
    /// sample).
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Material`] or [`JaError::InvalidConfig`] for
    /// invalid inputs.
    pub fn new(params: JaParameters, config: JaConfig) -> Result<Self, JaError> {
        params.validate()?;
        config.validate()?;
        Ok(Self {
            params,
            anhysteretic: config.anhysteretic.build(&params),
            clamp_negative_slope: config.clamp_negative_slope,
            m_total: 0.0,
            h_last: 0.0,
            has_sample: false,
            stats: JaStatistics::default(),
        })
    }

    /// The material parameters.
    pub fn params(&self) -> &JaParameters {
        &self.params
    }

    fn sample_at(&self, h: f64) -> JaSample {
        let m_sat = self.params.m_sat.value();
        let h_effective = h + self.params.alpha * m_sat * self.m_total;
        JaSample {
            h: FieldStrength::new(h),
            b: FluxDensity::new(MU0 * (h + self.m_total * m_sat)),
            m: Magnetisation::new(self.m_total * m_sat),
            m_an: self.anhysteretic.normalised(h_effective),
        }
    }
}

impl HysteresisBackend for TimeDomainBackend {
    fn label(&self) -> &'static str {
        "time-domain-baseline"
    }

    fn apply_field(&mut self, h: f64) -> Result<JaSample, JaError> {
        if !h.is_finite() {
            return Err(JaError::NonFiniteField { value: h });
        }
        self.stats.samples += 1;
        let dh = if self.has_sample {
            h - self.h_last
        } else {
            0.0
        };
        if let Some(direction) = FieldDirection::from_increment(dh) {
            let dm_dh = evaluate_total_slope(
                &self.params,
                &self.anhysteretic,
                self.h_last,
                self.m_total,
                direction,
                self.clamp_negative_slope,
            );
            self.stats.slope_evaluations += 1;
            self.stats.updates += 1;
            if dm_dh < 0.0 {
                self.stats.negative_slope_events += 1;
            }
            self.m_total += dm_dh * dh;
        }
        self.h_last = h;
        self.has_sample = true;
        if !self.m_total.is_finite() {
            return Err(JaError::StateDiverged { at_field: h });
        }
        Ok(self.sample_at(h))
    }

    fn statistics(&self) -> JaStatistics {
        self.stats
    }

    fn reset(&mut self) -> Result<(), JaError> {
        self.m_total = 0.0;
        self.h_last = 0.0;
        self.has_sample = false;
        self.stats = JaStatistics::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnetics::loop_analysis;

    fn paper_backends() -> Vec<Box<dyn HysteresisBackend>> {
        vec![
            Box::new(JilesAtherton::new(JaParameters::date2006()).expect("valid")),
            Box::new(
                TimeDomainBackend::new(JaParameters::date2006(), JaConfig::default())
                    .expect("valid"),
            ),
        ]
    }

    #[test]
    fn trait_objects_drive_both_core_backends() {
        let schedule = FieldSchedule::major_loop(10_000.0, 10.0, 2).expect("schedule");
        for backend in paper_backends().iter_mut() {
            let curve = backend.run_schedule(&schedule).expect("sweep");
            let metrics = loop_analysis::loop_metrics(&curve).expect("metrics");
            assert!(
                metrics.b_max.as_tesla() > 1.2 && metrics.b_max.as_tesla() < 2.5,
                "{}: B_max = {} T",
                backend.label(),
                metrics.b_max.as_tesla()
            );
            assert!(backend.statistics().updates > 0, "{}", backend.label());
        }
    }

    #[test]
    fn reset_restores_demagnetised_state_through_the_trait() {
        for backend in paper_backends().iter_mut() {
            backend.apply_field(5_000.0).expect("field");
            assert!(backend.statistics().samples > 0);
            backend.reset().expect("reset");
            assert_eq!(backend.statistics(), JaStatistics::default());
            let sample = backend.apply_field(0.0).expect("field");
            assert!(sample.b.as_tesla().abs() < 1e-9, "{}", backend.label());
        }
    }

    #[test]
    fn time_domain_backend_tracks_direct_model_on_fine_steps() {
        // On a fine schedule the conventional per-sample integration and the
        // timeless gated integration follow the same loop envelope; the two
        // formulations differ at the reversal handling, not in bulk shape.
        let schedule = FieldSchedule::major_loop(10_000.0, 5.0, 2).expect("schedule");
        let mut direct = JilesAtherton::new(JaParameters::date2006()).expect("valid");
        let mut baseline =
            TimeDomainBackend::new(JaParameters::date2006(), JaConfig::default()).expect("valid");
        let b_direct = HysteresisBackend::run_schedule(&mut direct, &schedule)
            .expect("sweep")
            .peak_flux_density()
            .expect("peak")
            .as_tesla();
        let b_baseline = baseline
            .run_schedule(&schedule)
            .expect("sweep")
            .peak_flux_density()
            .expect("peak")
            .as_tesla();
        assert!(
            (b_direct - b_baseline).abs() / b_direct < 0.1,
            "direct {b_direct} T vs time-domain {b_baseline} T"
        );
    }

    #[test]
    fn run_into_reuses_curve_and_matches_fresh_run() {
        let schedule = FieldSchedule::major_loop(10_000.0, 50.0, 1).expect("schedule");
        let mut model = JilesAtherton::new(JaParameters::date2006()).expect("valid");
        let fresh = HysteresisBackend::run_schedule(&mut model, &schedule).expect("sweep");

        HysteresisBackend::reset(&mut model).expect("reset");
        let mut reused = BhCurve::new();
        reused.push_raw(99.0, 99.0, 99.0); // stale content must be cleared
        model
            .run_schedule_into(&schedule, &mut reused)
            .expect("sweep");
        assert_eq!(fresh, reused);

        HysteresisBackend::reset(&mut model).expect("reset");
        let samples = schedule.to_samples();
        model
            .run_samples_into(&samples, &mut reused)
            .expect("sweep");
        assert_eq!(fresh, reused);
    }

    #[test]
    fn time_domain_backend_rejects_non_finite_field() {
        let mut backend =
            TimeDomainBackend::new(JaParameters::date2006(), JaConfig::default()).expect("valid");
        assert!(backend.apply_field(f64::NAN).is_err());
    }
}
