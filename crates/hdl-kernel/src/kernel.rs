//! The discrete-event kernel: signals + processes + scheduler.

use std::collections::BTreeSet;

use crate::error::KernelError;
use crate::process::{Process, ProcessContext, ProcessId};
use crate::scheduler::{Event, EventQueue};
use crate::signal::{SignalId, SignalStore};
use crate::time::SimTime;
use crate::value::Value;

/// Default limit on delta cycles within a single settle phase.
pub const DEFAULT_DELTA_LIMIT: usize = 10_000;

/// A single-threaded discrete-event simulation kernel with SystemC-like
/// evaluate/update semantics.
///
/// Typical use:
///
/// 1. [`add_signal`](Kernel::add_signal) for every signal;
/// 2. [`add_process`](Kernel::add_process) for every method process with its
///    static sensitivity list;
/// 3. drive inputs with [`write_initial`](Kernel::write_initial) /
///    [`schedule_write`](Kernel::schedule_write);
/// 4. run with [`settle`](Kernel::settle) (untimed, delta cycles only) or
///    [`run_until`](Kernel::run_until) (timed).
pub struct Kernel {
    signals: SignalStore,
    processes: Vec<Process>,
    sensitivity: Vec<Vec<ProcessId>>,
    queue: EventQueue,
    now: SimTime,
    delta_limit: usize,
    initialized: bool,
    delta_cycles_run: u64,
    activations: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Self {
            signals: SignalStore::new(),
            processes: Vec::new(),
            sensitivity: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delta_limit: DEFAULT_DELTA_LIMIT,
            initialized: false,
            delta_cycles_run: 0,
            activations: 0,
        }
    }

    /// Overrides the delta-cycle limit used to detect non-settling feedback.
    pub fn with_delta_limit(mut self, limit: usize) -> Self {
        self.delta_limit = limit.max(1);
        self
    }

    /// Adds a signal and returns its id.
    pub fn add_signal(&mut self, name: impl Into<String>, initial: Value) -> SignalId {
        let id = self.signals.add(name, initial);
        self.sensitivity.push(Vec::new());
        id
    }

    /// Registers a method process sensitive to the given signals.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] if any sensitivity entry does
    /// not refer to a signal of this kernel.
    pub fn add_process(
        &mut self,
        name: impl Into<String>,
        sensitive_to: &[SignalId],
        body: impl FnMut(&mut ProcessContext<'_>) -> Result<(), KernelError> + 'static,
    ) -> Result<ProcessId, KernelError> {
        for &sig in sensitive_to {
            if sig.index() >= self.signals.len() {
                return Err(KernelError::UnknownSignal { id: sig });
            }
        }
        let id = ProcessId(self.processes.len());
        self.processes.push(Process::new(name, body));
        for &sig in sensitive_to {
            self.sensitivity[sig.index()].push(id);
        }
        Ok(id)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of delta cycles executed so far.
    pub fn delta_cycles_run(&self) -> u64 {
        self.delta_cycles_run
    }

    /// Number of process activations executed so far — the event-driven
    /// cost metric reported by the runtime benches.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Reads a signal's committed value.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn read(&self, id: SignalId) -> Result<Value, KernelError> {
        self.signals.read(id)
    }

    /// Reads a real-valued signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    pub fn read_real(&self, id: SignalId) -> Result<f64, KernelError> {
        self.signals.read(id)?.as_real()
    }

    /// Writes a value that will be committed (and will trigger sensitive
    /// processes) on the next [`settle`](Kernel::settle) call.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn write_initial(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        self.signals.write(id, value)
    }

    /// Overwrites a signal immediately without generating an event.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn force(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        self.signals.force(id, value)
    }

    /// Schedules a timed write (testbench stimulus).
    pub fn schedule_write(&mut self, at: SimTime, id: SignalId, value: Value) {
        self.queue
            .push(at, Event::SignalWrite { signal: id, value });
    }

    /// Schedules a timed wake-up of a process.
    pub fn schedule_wakeup(&mut self, at: SimTime, process: ProcessId) {
        self.queue.push(at, Event::Wakeup { process });
    }

    /// Runs delta cycles at the current time until no more signal changes
    /// occur.  Returns the number of delta cycles executed.
    ///
    /// On the very first call every process is executed once
    /// (initialisation), as in SystemC.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DeltaCycleLimit`] if the system does not
    /// settle, or propagates the first process failure.
    pub fn settle(&mut self) -> Result<usize, KernelError> {
        let ready: BTreeSet<ProcessId> = if self.initialized {
            BTreeSet::new()
        } else {
            (0..self.processes.len()).map(ProcessId).collect()
        };
        self.initialized = true;
        self.settle_with(ready)
    }

    fn settle_with(&mut self, mut ready: BTreeSet<ProcessId>) -> Result<usize, KernelError> {
        // Commit anything written from outside (write_initial / timed writes)
        // and add the processes sensitive to those changes.
        let changed = self.signals.update();
        for sig in changed {
            for &p in &self.sensitivity[sig.index()] {
                ready.insert(p);
            }
        }

        let mut cycles = 0usize;
        while !ready.is_empty() {
            if cycles >= self.delta_limit {
                return Err(KernelError::DeltaCycleLimit {
                    limit: self.delta_limit,
                });
            }
            // Evaluate phase.
            let to_run: Vec<ProcessId> = ready.iter().copied().collect();
            ready.clear();
            for pid in to_run {
                self.run_process(pid)?;
            }
            // Update phase.
            let changed = self.signals.update();
            for sig in changed {
                for &p in &self.sensitivity[sig.index()] {
                    ready.insert(p);
                }
            }
            cycles += 1;
            self.delta_cycles_run += 1;
        }
        Ok(cycles)
    }

    fn run_process(&mut self, pid: ProcessId) -> Result<(), KernelError> {
        self.activations += 1;
        let now = self.now;
        let process = &mut self.processes[pid.index()];
        let mut ctx = ProcessContext::new(&mut self.signals, now);
        let result = (process.body)(&mut ctx);
        let wake = ctx.take_wake_request();
        if let Err(err) = result {
            return Err(KernelError::ProcessFailure {
                process: process.name.clone(),
                message: err.to_string(),
            });
        }
        if let Some(delay) = wake {
            self.queue.push(now + delay, Event::Wakeup { process: pid });
        }
        Ok(())
    }

    /// Advances simulated time, processing every queued event up to and
    /// including `end`, settling delta cycles after each timed event.
    /// Returns the number of timed events processed.
    ///
    /// # Errors
    ///
    /// Propagates any settle failure ([`KernelError::DeltaCycleLimit`],
    /// [`KernelError::ProcessFailure`]) and rejects an `end` before the
    /// current time with [`KernelError::ScheduleInPast`].
    pub fn run_until(&mut self, end: SimTime) -> Result<usize, KernelError> {
        if end < self.now {
            return Err(KernelError::ScheduleInPast {
                now: self.now,
                requested: end,
            });
        }
        // Make sure initial state is settled first.
        self.settle()?;
        let mut processed = 0usize;
        while let Some(t) = self.queue.next_time() {
            if t > end {
                break;
            }
            self.now = t;
            let events = self.queue.pop_at(t);
            let mut ready = BTreeSet::new();
            for event in events {
                processed += 1;
                match event {
                    Event::SignalWrite { signal, value } => {
                        self.signals.write(signal, value)?;
                    }
                    Event::Wakeup { process } => {
                        ready.insert(process);
                    }
                }
            }
            self.settle_with(ready)?;
        }
        self.now = end;
        Ok(processed)
    }

    /// `true` when no timed events remain in the queue.
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("now", &self.now)
            .field("delta_cycles_run", &self.delta_cycles_run)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_chain_settles() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(0.0));
        let b = k.add_signal("b", Value::Real(0.0));
        let c = k.add_signal("c", Value::Real(0.0));
        k.add_process("double", &[a], move |ctx| {
            let x = ctx.read_real(a)?;
            ctx.write_real(b, 2.0 * x)
        })
        .unwrap();
        k.add_process("add_one", &[b], move |ctx| {
            let x = ctx.read_real(b)?;
            ctx.write_real(c, x + 1.0)
        })
        .unwrap();

        k.write_initial(a, Value::Real(10.0)).unwrap();
        k.settle().unwrap();
        assert_eq!(k.read_real(c).unwrap(), 21.0);
        assert!(k.activations() >= 3);
    }

    #[test]
    fn identical_write_does_not_retrigger() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(1.0));
        let count = k.add_signal("count", Value::Int(0));
        k.add_process("counter", &[a], move |ctx| {
            let n = ctx.read_int(count)?;
            ctx.write_int(count, n + 1)
        })
        .unwrap();
        k.settle().unwrap(); // initialisation: runs once
        let first = k.read(count).unwrap().as_int().unwrap();
        k.write_initial(a, Value::Real(1.0)).unwrap(); // same value: no event
        k.settle().unwrap();
        assert_eq!(k.read(count).unwrap().as_int().unwrap(), first);
    }

    #[test]
    fn feedback_loop_hits_delta_limit() {
        let mut k = Kernel::new().with_delta_limit(50);
        let a = k.add_signal("a", Value::Int(0));
        k.add_process("osc", &[a], move |ctx| {
            let v = ctx.read_int(a)?;
            ctx.write_int(a, v + 1)
        })
        .unwrap();
        let err = k.settle().unwrap_err();
        assert!(matches!(err, KernelError::DeltaCycleLimit { limit: 50 }));
    }

    #[test]
    fn timed_stimulus_drives_process() {
        let mut k = Kernel::new();
        let h = k.add_signal("h", Value::Real(0.0));
        let b = k.add_signal("b", Value::Real(0.0));
        k.add_process("follow", &[h], move |ctx| {
            let x = ctx.read_real(h)?;
            ctx.write_real(b, x * 0.5)
        })
        .unwrap();
        for i in 1..=10 {
            k.schedule_write(SimTime::from_micros(i), h, Value::Real(i as f64));
        }
        let events = k.run_until(SimTime::from_micros(5)).unwrap();
        assert_eq!(events, 5);
        assert_eq!(k.read_real(b).unwrap(), 2.5);
        assert_eq!(k.now(), SimTime::from_micros(5));
        // Continue to the end.
        k.run_until(SimTime::from_micros(10)).unwrap();
        assert_eq!(k.read_real(b).unwrap(), 5.0);
        assert!(k.queue_is_empty());
    }

    #[test]
    fn run_until_rejects_time_travel() {
        let mut k = Kernel::new();
        k.run_until(SimTime::from_micros(10)).unwrap();
        assert!(matches!(
            k.run_until(SimTime::from_micros(5)),
            Err(KernelError::ScheduleInPast { .. })
        ));
    }

    #[test]
    fn self_rescheduling_process_acts_as_clock() {
        let mut k = Kernel::new();
        let tick = k.add_signal("tick", Value::Int(0));
        k.add_process("clock", &[], move |ctx| {
            let n = ctx.read_int(tick)?;
            ctx.write_int(tick, n + 1)?;
            ctx.wake_after(SimTime::from_micros(1));
            Ok(())
        })
        .unwrap();
        k.run_until(SimTime::from_micros(10)).unwrap();
        // Initial run + one wake per microsecond.
        let n = k.read(tick).unwrap().as_int().unwrap();
        assert!((10..=11).contains(&n), "tick = {n}");
    }

    #[test]
    fn process_failure_is_reported_with_name() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(0.0));
        k.add_process("broken", &[a], move |ctx| {
            // Read the real signal as a bit to force a type error.
            ctx.read_bit(a).map(|_| ())
        })
        .unwrap();
        let err = k.settle().unwrap_err();
        match err {
            KernelError::ProcessFailure { process, .. } => assert_eq!(process, "broken"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn add_process_rejects_unknown_sensitivity() {
        let mut k = Kernel::new();
        let foreign = SignalId(42);
        assert!(k.add_process("p", &[foreign], |_| Ok(())).is_err());
    }

    #[test]
    fn force_does_not_trigger() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(0.0));
        let count = k.add_signal("count", Value::Int(0));
        k.add_process("counter", &[a], move |ctx| {
            let n = ctx.read_int(count)?;
            ctx.write_int(count, n + 1)
        })
        .unwrap();
        k.settle().unwrap();
        let baseline = k.read(count).unwrap().as_int().unwrap();
        k.force(a, Value::Real(5.0)).unwrap();
        k.settle().unwrap();
        assert_eq!(k.read(count).unwrap().as_int().unwrap(), baseline);
        assert_eq!(k.read_real(a).unwrap(), 5.0);
    }

    #[test]
    fn debug_output_mentions_counts() {
        let mut k = Kernel::new();
        k.add_signal("a", Value::Real(0.0));
        let text = format!("{k:?}");
        assert!(text.contains("signals"));
    }
}
