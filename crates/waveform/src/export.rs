//! Trace export/import: CSV writing and reading, and a terminal ASCII
//! scatter plot.
//!
//! The ASCII plot is the reproduction's stand-in for the paper's plotted
//! Fig. 1 — it lets a user eyeball the BH loop (major loop plus nested minor
//! loops) straight from a terminal without any plotting dependency.

use std::io::Write;

use crate::error::WaveformError;
use crate::trace::Trace;

/// Writes a trace as CSV (header row of column names, then one line per
/// sample row) to any [`Write`] sink.  A `&mut Vec<u8>` or a `File` both
/// work; remember that a `&mut W` can be passed where `W: Write` is needed.
///
/// Values are formatted with `{:e}` — the shortest exponent-notation
/// decimal that parses back to the identical `f64` — so a written CSV
/// [`read_csv`]s back bit-for-bit.  (An earlier version formatted every
/// column with a fixed `{:.9e}`, which quantised inputs round-tripped
/// through external tools — e.g. a time column or a measured loop fed back
/// into the fitter.)
///
/// # Errors
///
/// Returns [`WaveformError::Export`] when the underlying writer fails.
pub fn write_csv<W: Write>(trace: &Trace, mut sink: W) -> Result<(), WaveformError> {
    writeln!(sink, "{}", trace.names().join(","))?;
    for i in 0..trace.len() {
        let row = trace.row(i).expect("index within len");
        let line = row
            .iter()
            .map(|v| format!("{v:e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(sink, "{line}")?;
    }
    Ok(())
}

/// Parses CSV text (as produced by [`write_csv`], or any header + numeric
/// rows file) back into a [`Trace`].
///
/// The first non-empty line is the header naming the columns; every
/// following non-empty line must hold exactly one finite number per column.
/// Whitespace around fields is tolerated, quoting is not supported (column
/// names in this workspace are plain identifiers).
///
/// # Errors
///
/// Returns [`WaveformError::Export`] with the offending line number for a
/// missing header, a ragged row or an unparsable/non-finite value.
pub fn read_csv(text: &str) -> Result<Trace, WaveformError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| WaveformError::Export("CSV input has no header row".into()))?;
    let names: Vec<String> = header
        .split(',')
        .map(|name| name.trim().to_owned())
        .collect();
    let mut trace = Trace::new(names.clone());
    let mut row = Vec::with_capacity(names.len());
    for (index, line) in lines {
        row.clear();
        for field in line.split(',') {
            let value: f64 = field.trim().parse().map_err(|_| {
                WaveformError::Export(format!(
                    "line {}: `{}` is not a number",
                    index + 1,
                    field.trim()
                ))
            })?;
            if !value.is_finite() {
                return Err(WaveformError::Export(format!(
                    "line {}: non-finite value `{}`",
                    index + 1,
                    field.trim()
                )));
            }
            row.push(value);
        }
        trace.push_row(&row).map_err(|_| {
            WaveformError::Export(format!(
                "line {}: expected {} fields, found {}",
                index + 1,
                names.len(),
                row.len()
            ))
        })?;
    }
    Ok(trace)
}

/// Renders a scatter plot of `y` against `x` on a `width × height` character
/// grid, returning the multi-line string.  Axis ranges are taken from the
/// data; the origin axes are drawn with `-` and `|` characters when they lie
/// inside the range, and data points with `*`.
///
/// # Errors
///
/// Returns [`WaveformError::Export`] when the two series have different
/// lengths or fewer than two points, or the grid is degenerate.
pub fn ascii_plot(
    x: &[f64],
    y: &[f64],
    width: usize,
    height: usize,
) -> Result<String, WaveformError> {
    if x.len() != y.len() {
        return Err(WaveformError::Export(format!(
            "x has {} points but y has {}",
            x.len(),
            y.len()
        )));
    }
    if x.len() < 2 {
        return Err(WaveformError::Export(
            "need at least two points to plot".into(),
        ));
    }
    if width < 10 || height < 5 {
        return Err(WaveformError::Export(
            "plot grid must be at least 10x5 characters".into(),
        ));
    }
    let (x_min, x_max) = min_max(x);
    let (y_min, y_max) = min_max(y);
    let x_span = if (x_max - x_min).abs() < f64::EPSILON {
        1.0
    } else {
        x_max - x_min
    };
    let y_span = if (y_max - y_min).abs() < f64::EPSILON {
        1.0
    } else {
        y_max - y_min
    };

    let mut grid = vec![vec![' '; width]; height];

    // Axes through zero (if inside range).
    if y_min <= 0.0 && 0.0 <= y_max {
        let row = to_row(0.0, y_min, y_span, height);
        for cell in &mut grid[row] {
            *cell = '-';
        }
    }
    if x_min <= 0.0 && 0.0 <= x_max {
        let col = to_col(0.0, x_min, x_span, width);
        for line in &mut grid {
            line[col] = if line[col] == '-' { '+' } else { '|' };
        }
    }

    for (&xi, &yi) in x.iter().zip(y) {
        if !xi.is_finite() || !yi.is_finite() {
            continue;
        }
        let col = to_col(xi, x_min, x_span, width);
        let row = to_row(yi, y_min, y_span, height);
        grid[row][col] = '*';
    }

    let mut out = String::with_capacity((width + 1) * (height + 2));
    out.push_str(&format!("y: [{y_min:.3e}, {y_max:.3e}]\n"));
    for line in grid {
        out.extend(line);
        out.push('\n');
    }
    out.push_str(&format!("x: [{x_min:.3e}, {x_max:.3e}]\n"));
    Ok(out)
}

fn min_max(series: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in series {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo > hi {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

fn to_col(x: f64, x_min: f64, x_span: f64, width: usize) -> usize {
    (((x - x_min) / x_span) * (width - 1) as f64).round() as usize
}

fn to_row(y: f64, y_min: f64, y_span: f64, height: usize) -> usize {
    let r = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
    height - 1 - r.min(height - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn csv_roundtrip_structure() {
        let mut trace = Trace::new(["h", "b"]);
        trace.push_row(&[0.0, 0.0]).unwrap();
        trace.push_row(&[10.0, 1.5]).unwrap();
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "h,b");
        assert_eq!(lines[2], "1e1,1.5e0");
    }

    #[test]
    fn csv_round_trips_bit_for_bit() {
        // Values chosen to be quantised by the old fixed `{:.9e}` format:
        // a fine time axis, a 17-significant-digit flux value, extremes.
        let mut trace = Trace::new(["t", "h", "b"]);
        trace
            .push_row(&[1.0e-9 + 1.0e-18, 0.1, 2.006_543_210_987_654])
            .unwrap();
        trace
            .push_row(&[2.0 / 3.0, -12_345.678_901_234_567, 1.0e-300])
            .unwrap();
        trace
            .push_row(&[f64::MIN_POSITIVE, f64::MAX, -0.0])
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let parsed = read_csv(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(parsed.names(), trace.names());
        assert_eq!(parsed.len(), trace.len());
        for i in 0..trace.len() {
            for (a, b) in parsed.row(i).unwrap().iter().zip(trace.row(i).unwrap()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn read_csv_tolerates_whitespace_and_blank_lines() {
        let trace = read_csv("\n h , b \n 1.0 , 2.5 \n\n 3e0 , -4.5e-1 \n").unwrap();
        assert_eq!(trace.names(), ["h", "b"]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.column("h").unwrap(), &[1.0, 3.0]);
        assert_eq!(trace.column("b").unwrap(), &[2.5, -0.45]);
    }

    #[test]
    fn read_csv_rejects_malformed_input() {
        assert!(matches!(read_csv(""), Err(WaveformError::Export(_))));
        assert!(matches!(read_csv("   \n  "), Err(WaveformError::Export(_))));
        // Ragged row.
        let err = read_csv("a,b\n1.0\n").unwrap_err();
        assert!(err.to_string().contains("expected 2 fields"), "{err}");
        // Not a number.
        let err = read_csv("a,b\n1.0,oops\n").unwrap_err();
        assert!(err.to_string().contains("not a number"), "{err}");
        // Non-finite.
        let err = read_csv("a\ninf\n").unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn csv_empty_trace_only_header() {
        let trace = Trace::new(["a", "b", "c"]);
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b,c\n");
    }

    #[test]
    fn ascii_plot_draws_points_and_axes() {
        let x: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v / 50.0 - 25.0).collect();
        let plot = ascii_plot(&x, &y, 60, 20).unwrap();
        assert!(plot.contains('*'));
        assert!(plot.contains('|'));
        assert!(plot.contains('-'));
        assert!(plot.lines().count() >= 20);
    }

    #[test]
    fn ascii_plot_rejects_bad_input() {
        assert!(ascii_plot(&[1.0], &[1.0], 40, 10).is_err());
        assert!(ascii_plot(&[1.0, 2.0], &[1.0], 40, 10).is_err());
        assert!(ascii_plot(&[1.0, 2.0], &[1.0, 2.0], 2, 2).is_err());
    }

    #[test]
    fn ascii_plot_handles_constant_series() {
        let x = vec![0.0, 1.0, 2.0];
        let y = vec![5.0, 5.0, 5.0];
        let plot = ascii_plot(&x, &y, 20, 8).unwrap();
        assert!(plot.contains('*'));
    }

    #[test]
    fn ascii_plot_skips_non_finite_points() {
        let x = vec![0.0, 1.0, f64::NAN, 3.0];
        let y = vec![0.0, 1.0, 2.0, f64::INFINITY];
        let plot = ascii_plot(&x, &y, 20, 8).unwrap();
        assert!(plot.contains('*'));
    }
}
