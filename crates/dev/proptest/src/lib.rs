//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest API used by this workspace:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   inner attribute) generating `#[test]` functions that sample each
//!   strategy a configurable number of times;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: `Range<f64>`, `Range<usize>`, tuples (2–6 elements),
//!   [`Strategy::prop_map`] and [`collection::vec`];
//! * [`ProptestConfig`] with [`ProptestConfig::with_cases`].
//!
//! Sampling is deterministic: the RNG is seeded from the test's module path
//! and name plus the case index, so failures are reproducible run to run.
//! There is no shrinking — the failing inputs are printed as-is by the
//! assertion message.

use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic test RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG for one test case from the test identity and case
    /// index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A source of random values of one type — the sampling core of the real
/// proptest `Strategy` trait, without shrink trees.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number of elements for [`vec()`]: a fixed size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi.max(self.size.lo + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property test, printing the formatted
/// message (and the generated inputs via the caller's format string) on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each function is expanded into a plain test
/// that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let x = (2.0_f64..5.0).generate(&mut rng);
            assert!((2.0..5.0).contains(&x));
            let n = (1usize..4).generate(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vec", 0);
        let v = crate::collection::vec(0.0_f64..1.0, 9).generate(&mut rng);
        assert_eq!(v.len(), 9);
        for _ in 0..100 {
            let v = crate::collection::vec(0.0_f64..1.0, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 0.0_f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n.min(9), n);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(pair in (0.0_f64..1.0, 5.0_f64..6.0)) {
            prop_assert!(pair.0 < pair.1);
        }
    }
}
