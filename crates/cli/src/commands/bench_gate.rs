//! `ja bench-gate` — diff two bench reports, fail on perf regressions.
//!
//! Consumes the `kind: "bench"` reports the criterion stand-in's `--json`
//! flag writes (one merged document per run: `BENCH_baseline.json`
//! committed to the repository, `BENCH_pr.json` produced by CI's
//! bench-smoke job) and emits a one-line-per-bench markdown table suitable
//! for `$GITHUB_STEP_SUMMARY`.

use std::collections::BTreeMap;
use std::io::Write;

use ja_hysteresis::json::{JsonValue, SCHEMA_VERSION, SCHEMA_VERSION_KEY};

use crate::common::{read_input, write_output};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help bench-gate`).
pub const HELP: &str = "\
ja bench-gate — compare bench medians against a baseline, fail on regression

USAGE:
    ja bench-gate --baseline PATH --current PATH [OPTIONS]

OPTIONS:
    --baseline PATH       committed reference report (kind: \"bench\")
    --current PATH        freshly measured report (kind: \"bench\")
    --max-ratio R         fail when current/baseline exceeds R [default: 2.5]
                          (generous on purpose: smoke-mode medians on a
                          noisy 1-core CI runner jitter far more than a
                          genuine regression signal on a quiet machine)
    --min-baseline-ns NS  skip the ratio check for benches whose baseline
                          median is below NS (sub-floor timings are noise)
                          [default: 0]
    --summary PATH        append the markdown table to PATH (e.g.
                          \"$GITHUB_STEP_SUMMARY\")
    --out PATH            write the table to PATH instead of stdout

Both inputs must carry the shared envelope (schema_version 1, kind
\"bench\") — a schema mismatch fails the gate, which is how drift between
the criterion stand-in and the library constant is caught.

EXIT STATUS: 0 when no bench regressed and none disappeared; 1 otherwise.
Benches present only in --current are reported as `new` and do not fail
the gate (update the baseline to start tracking them).";

/// One row of the gate's verdict table.
#[derive(Debug, PartialEq)]
pub struct GateRow {
    /// Bench id.
    pub id: String,
    /// Baseline median (ns), if present.
    pub baseline_ns: Option<f64>,
    /// Current median (ns), if present.
    pub current_ns: Option<f64>,
    /// current/baseline when both are present and baseline > 0.
    pub ratio: Option<f64>,
    /// Verdict: `ok`, `faster`, `below floor`, `new`, `missing` or
    /// `REGRESSION`.
    pub status: &'static str,
}

impl GateRow {
    /// Whether this row fails the gate.
    pub fn fails(&self) -> bool {
        matches!(self.status, "REGRESSION" | "missing")
    }
}

/// Computes the per-bench verdicts (sorted by bench id).
pub fn gate(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    max_ratio: f64,
    min_baseline_ns: f64,
) -> Vec<GateRow> {
    let mut ids: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    ids.sort();
    ids.dedup();
    ids.into_iter()
        .map(|id| {
            let baseline_ns = baseline.get(id).copied();
            let current_ns = current.get(id).copied();
            let (ratio, status) = match (baseline_ns, current_ns) {
                (Some(base), Some(now)) if base > 0.0 => {
                    let ratio = now / base;
                    let status = if base < min_baseline_ns {
                        "below floor"
                    } else if ratio > max_ratio {
                        "REGRESSION"
                    } else if ratio < 1.0 / max_ratio {
                        "faster"
                    } else {
                        "ok"
                    };
                    (Some(ratio), status)
                }
                // A non-positive baseline median cannot anchor a ratio.
                (Some(_), Some(_)) => (None, "below floor"),
                (Some(_), None) => (None, "missing"),
                (None, _) => (None, "new"),
            };
            GateRow {
                id: id.clone(),
                baseline_ns,
                current_ns,
                ratio,
                status,
            }
        })
        .collect()
}

/// Renders the verdicts as a markdown table plus a one-line summary.
pub fn render_markdown(rows: &[GateRow], max_ratio: f64) -> String {
    let mut text = format!("### Bench gate (fail above {max_ratio}x)\n\n");
    text.push_str("| bench | baseline (ns) | current (ns) | ratio | status |\n");
    text.push_str("|---|---:|---:|---:|---|\n");
    let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |v| format!("{v:.1}"));
    for row in rows {
        text.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            row.id,
            fmt(row.baseline_ns),
            fmt(row.current_ns),
            row.ratio
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.2}")),
            row.status,
        ));
    }
    let failures = rows.iter().filter(|row| row.fails()).count();
    text.push_str(&format!(
        "\n{} benches, {failures} gate failure{}\n",
        rows.len(),
        if failures == 1 { "" } else { "s" }
    ));
    text
}

/// Loads a `kind: "bench"` report and returns its medians map.
fn load_bench_report(path: &str) -> Result<BTreeMap<String, f64>, CliError> {
    let doc = JsonValue::parse(&read_input(path)?)
        .map_err(|err| CliError::failure(format!("{path}: {err}")))?;
    let version = doc.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64);
    if version != Some(SCHEMA_VERSION) {
        return Err(CliError::failure(format!(
            "{path}: schema_version {version:?} does not match the supported {SCHEMA_VERSION}"
        )));
    }
    if doc.get("kind").and_then(JsonValue::as_str) != Some("bench") {
        return Err(CliError::failure(format!(
            "{path}: not a `kind: \"bench\"` report"
        )));
    }
    let benches = doc
        .get("benches")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| CliError::failure(format!("{path}: missing `benches` object")))?;
    let mut map = BTreeMap::new();
    for (id, value) in benches {
        let median = value.as_f64().ok_or_else(|| {
            CliError::failure(format!("{path}: bench `{id}` median is not a number"))
        })?;
        map.insert(id.clone(), median);
    }
    Ok(map)
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures for unreadable/invalid reports,
/// regressions or disappeared benches.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &[],
        &[
            "baseline",
            "current",
            "max-ratio",
            "min-baseline-ns",
            "summary",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let baseline = load_bench_report(parsed.require("baseline")?)?;
    let current = load_bench_report(parsed.require("current")?)?;
    let max_ratio = parsed.f64_or("max-ratio", 2.5)?;
    if max_ratio <= 0.0 {
        return Err(CliError::usage("--max-ratio must be > 0".to_owned()));
    }
    let min_baseline_ns = parsed.f64_or("min-baseline-ns", 0.0)?;

    let rows = gate(&baseline, &current, max_ratio, min_baseline_ns);
    let markdown = render_markdown(&rows, max_ratio);
    write_output(parsed.value("out"), &markdown)?;
    if let Some(path) = parsed.value("summary") {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|err| CliError::failure(format!("cannot open `{path}`: {err}")))?;
        file.write_all(markdown.as_bytes())
            .map_err(|err| CliError::failure(format!("cannot append to `{path}`: {err}")))?;
    }

    let failures: Vec<&GateRow> = rows.iter().filter(|row| row.fails()).collect();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CliError::failure(format!(
            "bench gate failed: {}",
            failures
                .iter()
                .map(|row| format!("{} ({})", row.id, row.status))
                .collect::<Vec<_>>()
                .join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries
            .iter()
            .map(|(id, v)| ((*id).to_owned(), *v))
            .collect()
    }

    #[test]
    fn gate_classifies_every_case() {
        let baseline = map(&[
            ("steady", 100.0),
            ("regressed", 100.0),
            ("sped_up", 100.0),
            ("tiny", 10.0),
            ("gone", 100.0),
            ("zero", 0.0),
        ]);
        let current = map(&[
            ("steady", 140.0),
            ("regressed", 251.0),
            ("sped_up", 30.0),
            ("tiny", 80.0),
            ("zero", 5.0),
            ("fresh", 42.0),
        ]);
        let rows = gate(&baseline, &current, 2.5, 50.0);
        let by_id = |id: &str| rows.iter().find(|row| row.id == id).unwrap();
        assert_eq!(by_id("steady").status, "ok");
        assert_eq!(by_id("regressed").status, "REGRESSION");
        assert!(by_id("regressed").fails());
        assert_eq!(by_id("sped_up").status, "faster");
        assert_eq!(by_id("tiny").status, "below floor", "10ns < 50ns floor");
        assert_eq!(by_id("zero").status, "below floor");
        assert_eq!(by_id("gone").status, "missing");
        assert!(by_id("gone").fails());
        assert_eq!(by_id("fresh").status, "new");
        assert!(!by_id("fresh").fails());
        // Sorted by id.
        let ids: Vec<&str> = rows.iter().map(|row| row.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn markdown_has_one_line_per_bench() {
        let rows = gate(
            &map(&[("a", 100.0), ("b", 10.0)]),
            &map(&[("a", 120.0), ("b", 300.0)]),
            2.5,
            0.0,
        );
        let text = render_markdown(&rows, 2.5);
        assert!(text.contains("| a | 100.0 | 120.0 | 1.20 | ok |"), "{text}");
        assert!(
            text.contains("| b | 10.0 | 300.0 | 30.00 | REGRESSION |"),
            "{text}"
        );
        assert!(text.contains("2 benches, 1 gate failure\n"), "{text}");
    }
}
