//! The discrete-event kernel: signals + processes + scheduler.

use crate::error::KernelError;
use crate::process::{Process, ProcessContext, ProcessId};
use crate::scheduler::{Event, EventQueue};
use crate::signal::{SignalId, SignalStore};
use crate::time::SimTime;
use crate::value::Value;

/// Default limit on delta cycles within a single settle phase.
pub const DEFAULT_DELTA_LIMIT: usize = 10_000;

/// A single-threaded discrete-event simulation kernel with SystemC-like
/// evaluate/update semantics.
///
/// Typical use:
///
/// 1. [`add_signal`](Kernel::add_signal) for every signal;
/// 2. [`add_process`](Kernel::add_process) for every method process with its
///    static sensitivity list;
/// 3. drive inputs with [`write_initial`](Kernel::write_initial) /
///    [`schedule_write`](Kernel::schedule_write);
/// 4. run with [`settle`](Kernel::settle) (untimed, delta cycles only) or
///    [`run_until`](Kernel::run_until) (timed).
///
/// A warm delta cycle allocates nothing: the ready sets, the changed-signal
/// buffer and the timed-event drain buffer are all kernel-owned scratch that
/// is reused cycle to cycle.  [`reset`](Kernel::reset) returns the kernel to
/// its construction-time state without dropping processes or sensitivity
/// lists, so one instance can run many scenarios back to back.
pub struct Kernel {
    signals: SignalStore,
    processes: Vec<Process>,
    sensitivity: Vec<Vec<ProcessId>>,
    // CSR mirror of `sensitivity` (offsets + one flat id array), rebuilt on
    // every registration: the per-cycle commit walk reads it without the
    // nested-Vec indirection, and registration is construction-time only.
    sens_offsets: Vec<u32>,
    sens_flat: Vec<ProcessId>,
    queue: EventQueue,
    now: SimTime,
    delta_limit: usize,
    initialized: bool,
    delta_cycles_run: u64,
    activations: u64,
    events_scheduled: u64,
    // Reused scratch for the delta-cycle loop.  `next_ready` accumulates the
    // processes triggered for the coming cycle, deduplicated by per-process
    // epoch marks (`queued_epoch[p] == epoch` means "already queued for this
    // cycle"); at the cycle boundary it is sorted and swapped into `ready`.
    // The epoch counter only ever grows — across settles and resets — so a
    // stale mark can never alias a future cycle.
    ready: Vec<ProcessId>,
    next_ready: Vec<ProcessId>,
    queued_epoch: Vec<u64>,
    epoch: u64,
    timed_events: Vec<Event>,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Self {
            signals: SignalStore::new(),
            processes: Vec::new(),
            sensitivity: Vec::new(),
            sens_offsets: vec![0],
            sens_flat: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delta_limit: DEFAULT_DELTA_LIMIT,
            initialized: false,
            delta_cycles_run: 0,
            activations: 0,
            events_scheduled: 0,
            ready: Vec::new(),
            next_ready: Vec::new(),
            queued_epoch: Vec::new(),
            epoch: 1,
            timed_events: Vec::new(),
        }
    }

    /// Overrides the delta-cycle limit used to detect non-settling feedback.
    pub fn with_delta_limit(mut self, limit: usize) -> Self {
        self.delta_limit = limit.max(1);
        self
    }

    /// Adds a signal and returns its id.
    pub fn add_signal(&mut self, name: impl Into<String>, initial: Value) -> SignalId {
        let id = self.signals.add(name, initial);
        self.sensitivity.push(Vec::new());
        self.sens_offsets.push(self.sens_flat.len() as u32);
        id
    }

    /// Rebuilds the flat CSR view of the sensitivity lists.
    fn rebuild_sensitivity_index(&mut self) {
        self.sens_offsets.clear();
        self.sens_flat.clear();
        self.sens_offsets.push(0);
        for list in &self.sensitivity {
            self.sens_flat.extend_from_slice(list);
            self.sens_offsets.push(self.sens_flat.len() as u32);
        }
    }

    /// Registers a method process sensitive to the given signals.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] if any sensitivity entry does
    /// not refer to a signal of this kernel.
    pub fn add_process(
        &mut self,
        name: impl Into<String>,
        sensitive_to: &[SignalId],
        body: impl FnMut(&mut ProcessContext<'_>) -> Result<(), KernelError> + 'static,
    ) -> Result<ProcessId, KernelError> {
        for &sig in sensitive_to {
            if sig.index() >= self.signals.len() {
                return Err(KernelError::UnknownSignal { id: sig });
            }
        }
        let id = ProcessId(self.processes.len());
        self.processes.push(Process::new(name, body));
        self.queued_epoch.push(0);
        for &sig in sensitive_to {
            self.sensitivity[sig.index()].push(id);
        }
        self.rebuild_sensitivity_index();
        Ok(id)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of delta cycles executed so far.
    pub fn delta_cycles_run(&self) -> u64 {
        self.delta_cycles_run
    }

    /// Number of process activations executed so far — the event-driven
    /// cost metric reported by the runtime benches.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Number of timed events scheduled so far (testbench stimulus plus
    /// process wake-ups).
    pub fn events_scheduled(&self) -> u64 {
        self.events_scheduled
    }

    /// Reads a signal's committed value.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn read(&self, id: SignalId) -> Result<Value, KernelError> {
        self.signals.read(id)
    }

    /// Reads a real-valued signal.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] or
    /// [`KernelError::TypeMismatch`].
    pub fn read_real(&self, id: SignalId) -> Result<f64, KernelError> {
        self.signals.read(id)?.as_real()
    }

    /// Writes a value that will be committed (and will trigger sensitive
    /// processes) on the next [`settle`](Kernel::settle) call.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn write_initial(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        self.signals.write(id, value)
    }

    /// Overwrites a signal immediately without generating an event.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownSignal`] for a foreign id.
    pub fn force(&mut self, id: SignalId, value: Value) -> Result<(), KernelError> {
        self.signals.force(id, value)
    }

    /// Schedules a timed write (testbench stimulus).
    pub fn schedule_write(&mut self, at: SimTime, id: SignalId, value: Value) {
        self.events_scheduled += 1;
        self.queue
            .push(at, Event::SignalWrite { signal: id, value });
    }

    /// Schedules a timed wake-up of a process.
    pub fn schedule_wakeup(&mut self, at: SimTime, process: ProcessId) {
        self.events_scheduled += 1;
        self.queue.push(at, Event::Wakeup { process });
    }

    /// Runs delta cycles at the current time until no more signal changes
    /// occur.  Returns the number of delta cycles executed.
    ///
    /// On the very first call every process is executed once
    /// (initialisation), as in SystemC.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DeltaCycleLimit`] if the system does not
    /// settle, or propagates the first process failure.
    pub fn settle(&mut self) -> Result<usize, KernelError> {
        if !self.initialized {
            self.initialized = true;
            for idx in 0..self.processes.len() {
                self.mark_ready(ProcessId(idx));
            }
        }
        self.settle_ready()
    }

    /// Queues a process for the coming delta cycle, deduplicated by its
    /// epoch mark.
    fn mark_ready(&mut self, pid: ProcessId) {
        if self.queued_epoch[pid.index()] != self.epoch {
            self.queued_epoch[pid.index()] = self.epoch;
            self.next_ready.push(pid);
        }
    }

    /// Commits pending signal writes and queues the processes sensitive to
    /// the signals that actually changed — one pass over the written
    /// signals, no intermediate changed-id buffer.
    fn commit_and_mark(&mut self) {
        let epoch = self.epoch;
        let offsets = &self.sens_offsets;
        let flat = &self.sens_flat;
        let queued_epoch = &mut self.queued_epoch;
        let next_ready = &mut self.next_ready;
        self.signals.commit_dirty(|sig| {
            let deps = &flat[offsets[sig.index()] as usize..offsets[sig.index() + 1] as usize];
            for &pid in deps {
                let mark = &mut queued_epoch[pid.index()];
                if *mark != epoch {
                    *mark = epoch;
                    next_ready.push(pid);
                }
            }
        });
    }

    /// Runs delta cycles until the queued ready set drains, starting from
    /// whatever [`mark_ready`](Kernel::mark_ready) has accumulated.
    fn settle_ready(&mut self) -> Result<usize, KernelError> {
        let result = self.settle_ready_inner();
        if result.is_err() {
            // Leave the scratch state clean so the kernel stays usable: a
            // later settle must not re-run processes queued by the failed
            // phase (matching the previous implementation, which dropped
            // its per-call ready set on error).
            self.ready.clear();
            self.next_ready.clear();
            self.epoch += 1;
        }
        result
    }

    fn settle_ready_inner(&mut self) -> Result<usize, KernelError> {
        // Commit anything written from outside (write_initial / timed
        // writes) and add the processes sensitive to those changes.
        self.commit_and_mark();

        // One counter serves both the running total and this phase's cycle
        // count, so the loop pays a single increment per cycle.
        let start = self.delta_cycles_run;
        while !self.next_ready.is_empty() {
            if (self.delta_cycles_run - start) as usize >= self.delta_limit {
                return Err(KernelError::DeltaCycleLimit {
                    limit: self.delta_limit,
                });
            }
            // Evaluate phase.  Processes run in ascending id order — the
            // determinism invariant the bit-identical BH curves rest on.
            self.epoch += 1;
            if self.next_ready.len() == 1 {
                // Dominant shape in practice (a signal-feedback loop
                // re-triggering one process per cycle): skip the sort and
                // the double-buffer swap entirely.
                let pid = self.next_ready[0];
                self.next_ready.clear();
                self.run_process(pid)?;
            } else {
                self.next_ready.sort_unstable();
                std::mem::swap(&mut self.ready, &mut self.next_ready);
                self.next_ready.clear();
                // Move the ready list out to iterate it while running the
                // processes (which borrow `self` mutably).  On the error
                // path the moved list is dropped and `ready` re-grows on
                // the next settle; the warm happy path keeps its capacity.
                let ready = std::mem::take(&mut self.ready);
                for &pid in &ready {
                    self.run_process(pid)?;
                }
                self.ready = ready;
            }
            // Update phase.
            self.commit_and_mark();
            self.delta_cycles_run += 1;
        }
        Ok((self.delta_cycles_run - start) as usize)
    }

    #[inline]
    fn run_process(&mut self, pid: ProcessId) -> Result<(), KernelError> {
        self.activations += 1;
        let now = self.now;
        let process = &mut self.processes[pid.index()];
        let mut ctx = ProcessContext::new(&mut self.signals, now);
        match (process.body)(&mut ctx) {
            Ok(()) => {
                // A wake requested by a failing process is discarded with
                // the rest of the settle phase, so only the Ok path looks.
                if let Some(delay) = ctx.take_wake_request() {
                    self.events_scheduled += 1;
                    self.queue.push(now + delay, Event::Wakeup { process: pid });
                }
                Ok(())
            }
            Err(err) => Err(KernelError::ProcessFailure {
                process: process.name.clone(),
                message: err.to_string(),
            }),
        }
    }

    /// Advances simulated time, processing every queued event up to and
    /// including `end`, settling delta cycles after each timed event.
    /// Returns the number of timed events processed.
    ///
    /// # Errors
    ///
    /// Propagates any settle failure ([`KernelError::DeltaCycleLimit`],
    /// [`KernelError::ProcessFailure`]) and rejects an `end` before the
    /// current time with [`KernelError::ScheduleInPast`].
    pub fn run_until(&mut self, end: SimTime) -> Result<usize, KernelError> {
        if end < self.now {
            return Err(KernelError::ScheduleInPast {
                now: self.now,
                requested: end,
            });
        }
        // Make sure initial state is settled first.
        self.settle()?;
        let mut processed = 0usize;
        while let Some(t) = self.queue.next_time() {
            if t > end {
                break;
            }
            self.now = t;
            self.timed_events.clear();
            processed += self.queue.pop_into(t, &mut self.timed_events);
            for i in 0..self.timed_events.len() {
                match self.timed_events[i] {
                    Event::SignalWrite { signal, value } => {
                        self.signals.write(signal, value)?;
                    }
                    Event::Wakeup { process } => {
                        self.mark_ready(process);
                    }
                }
            }
            self.settle_ready()?;
        }
        self.now = end;
        Ok(processed)
    }

    /// `true` when no timed events remain in the queue.
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Returns the kernel to its construction-time state — signals back at
    /// their initial values, event queue empty, time zero, counters zeroed,
    /// initialisation pending — while keeping every process and sensitivity
    /// list.  The next [`settle`](Kernel::settle) re-runs all processes
    /// once, exactly as on a fresh kernel, so a reset instance produces
    /// bit-identical results to a newly built one without re-boxing process
    /// closures or re-declaring signals.
    pub fn reset(&mut self) {
        self.signals.reset();
        self.queue.clear();
        self.now = SimTime::ZERO;
        self.initialized = false;
        self.delta_cycles_run = 0;
        self.activations = 0;
        self.events_scheduled = 0;
        self.ready.clear();
        self.next_ready.clear();
        // Keep the epoch monotonic instead of clearing the per-process
        // marks: bumping it invalidates every stale mark in O(1).
        self.epoch += 1;
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("now", &self.now)
            .field("delta_cycles_run", &self.delta_cycles_run)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_chain_settles() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(0.0));
        let b = k.add_signal("b", Value::Real(0.0));
        let c = k.add_signal("c", Value::Real(0.0));
        k.add_process("double", &[a], move |ctx| {
            let x = ctx.read_real(a)?;
            ctx.write_real(b, 2.0 * x)
        })
        .unwrap();
        k.add_process("add_one", &[b], move |ctx| {
            let x = ctx.read_real(b)?;
            ctx.write_real(c, x + 1.0)
        })
        .unwrap();

        k.write_initial(a, Value::Real(10.0)).unwrap();
        k.settle().unwrap();
        assert_eq!(k.read_real(c).unwrap(), 21.0);
        assert!(k.activations() >= 3);
    }

    #[test]
    fn identical_write_does_not_retrigger() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(1.0));
        let count = k.add_signal("count", Value::Int(0));
        k.add_process("counter", &[a], move |ctx| {
            let n = ctx.read_int(count)?;
            ctx.write_int(count, n + 1)
        })
        .unwrap();
        k.settle().unwrap(); // initialisation: runs once
        let first = k.read(count).unwrap().as_int().unwrap();
        k.write_initial(a, Value::Real(1.0)).unwrap(); // same value: no event
        k.settle().unwrap();
        assert_eq!(k.read(count).unwrap().as_int().unwrap(), first);
    }

    #[test]
    fn feedback_loop_hits_delta_limit() {
        let mut k = Kernel::new().with_delta_limit(50);
        let a = k.add_signal("a", Value::Int(0));
        k.add_process("osc", &[a], move |ctx| {
            let v = ctx.read_int(a)?;
            ctx.write_int(a, v + 1)
        })
        .unwrap();
        let err = k.settle().unwrap_err();
        assert!(matches!(err, KernelError::DeltaCycleLimit { limit: 50 }));
    }

    #[test]
    fn timed_stimulus_drives_process() {
        let mut k = Kernel::new();
        let h = k.add_signal("h", Value::Real(0.0));
        let b = k.add_signal("b", Value::Real(0.0));
        k.add_process("follow", &[h], move |ctx| {
            let x = ctx.read_real(h)?;
            ctx.write_real(b, x * 0.5)
        })
        .unwrap();
        for i in 1..=10 {
            k.schedule_write(SimTime::from_micros(i), h, Value::Real(i as f64));
        }
        assert_eq!(k.events_scheduled(), 10);
        let events = k.run_until(SimTime::from_micros(5)).unwrap();
        assert_eq!(events, 5);
        assert_eq!(k.read_real(b).unwrap(), 2.5);
        assert_eq!(k.now(), SimTime::from_micros(5));
        // Continue to the end.
        k.run_until(SimTime::from_micros(10)).unwrap();
        assert_eq!(k.read_real(b).unwrap(), 5.0);
        assert!(k.queue_is_empty());
    }

    #[test]
    fn run_until_rejects_time_travel() {
        let mut k = Kernel::new();
        k.run_until(SimTime::from_micros(10)).unwrap();
        assert!(matches!(
            k.run_until(SimTime::from_micros(5)),
            Err(KernelError::ScheduleInPast { .. })
        ));
    }

    #[test]
    fn self_rescheduling_process_acts_as_clock() {
        let mut k = Kernel::new();
        let tick = k.add_signal("tick", Value::Int(0));
        k.add_process("clock", &[], move |ctx| {
            let n = ctx.read_int(tick)?;
            ctx.write_int(tick, n + 1)?;
            ctx.wake_after(SimTime::from_micros(1));
            Ok(())
        })
        .unwrap();
        k.run_until(SimTime::from_micros(10)).unwrap();
        // Initial run + one wake per microsecond.
        let n = k.read(tick).unwrap().as_int().unwrap();
        assert!((10..=11).contains(&n), "tick = {n}");
        assert_eq!(k.events_scheduled(), n as u64);
    }

    #[test]
    fn process_failure_is_reported_with_name() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(0.0));
        k.add_process("broken", &[a], move |ctx| {
            // Read the real signal as a bit to force a type error.
            ctx.read_bit(a).map(|_| ())
        })
        .unwrap();
        let err = k.settle().unwrap_err();
        match err {
            KernelError::ProcessFailure { process, .. } => assert_eq!(process, "broken"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn add_process_rejects_unknown_sensitivity() {
        let mut k = Kernel::new();
        let foreign = SignalId(42);
        assert!(k.add_process("p", &[foreign], |_| Ok(())).is_err());
    }

    #[test]
    fn force_does_not_trigger() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(0.0));
        let count = k.add_signal("count", Value::Int(0));
        k.add_process("counter", &[a], move |ctx| {
            let n = ctx.read_int(count)?;
            ctx.write_int(count, n + 1)
        })
        .unwrap();
        k.settle().unwrap();
        let baseline = k.read(count).unwrap().as_int().unwrap();
        k.force(a, Value::Real(5.0)).unwrap();
        k.settle().unwrap();
        assert_eq!(k.read(count).unwrap().as_int().unwrap(), baseline);
        assert_eq!(k.read_real(a).unwrap(), 5.0);
    }

    /// Builds the little combinational chain used by the reuse tests and
    /// runs a short sweep, returning the observed outputs.
    fn chain_outputs(k: &mut Kernel, a: SignalId, c: SignalId) -> Vec<f64> {
        let mut outputs = Vec::new();
        for i in 0..5 {
            k.write_initial(a, Value::Real(f64::from(i))).unwrap();
            k.settle().unwrap();
            outputs.push(k.read_real(c).unwrap());
        }
        outputs
    }

    #[test]
    fn reset_restores_construction_time_behaviour() {
        let mut k = Kernel::new();
        let a = k.add_signal("a", Value::Real(0.0));
        let b = k.add_signal("b", Value::Real(0.0));
        let c = k.add_signal("c", Value::Real(0.0));
        k.add_process("double", &[a], move |ctx| {
            let x = ctx.read_real(a)?;
            ctx.write_real(b, 2.0 * x)
        })
        .unwrap();
        k.add_process("add_one", &[b], move |ctx| {
            let x = ctx.read_real(b)?;
            ctx.write_real(c, x + 1.0)
        })
        .unwrap();

        let first = chain_outputs(&mut k, a, c);
        k.reset();
        assert_eq!(k.now(), SimTime::ZERO);
        assert_eq!(k.delta_cycles_run(), 0);
        assert_eq!(k.activations(), 0);
        assert_eq!(k.events_scheduled(), 0);
        assert_eq!(k.read_real(a).unwrap(), 0.0, "signals back at initial");
        let second = chain_outputs(&mut k, a, c);
        assert_eq!(first, second, "reset kernel must replay bit-identically");
    }

    #[test]
    fn reset_clears_the_timed_queue_and_time() {
        let mut k = Kernel::new();
        let h = k.add_signal("h", Value::Real(0.0));
        k.add_process("idle", &[h], |_| Ok(())).unwrap();
        k.schedule_write(SimTime::from_micros(50), h, Value::Real(1.0));
        k.run_until(SimTime::from_micros(10)).unwrap();
        assert!(!k.queue_is_empty());
        k.reset();
        assert!(k.queue_is_empty());
        // Time travel back to zero is legal again after reset.
        k.run_until(SimTime::from_micros(1)).unwrap();
        assert_eq!(k.now(), SimTime::from_micros(1));
    }

    #[test]
    fn debug_output_mentions_counts() {
        let mut k = Kernel::new();
        k.add_signal("a", Value::Real(0.0));
        let text = format!("{k:?}");
        assert!(text.contains("signals"));
    }
}
