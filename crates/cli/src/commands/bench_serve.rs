//! `ja bench-serve` — localhost load generator for the `ja serve`
//! daemon: requests/sec and latency percentiles for cache misses
//! (full evaluation) and cache hits (content-addressed O(1) lookups).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use hdl_models::serve::{serve, ResultCache, ServerOptions};
use ja_hysteresis::json::{JsonValue, SCHEMA_VERSION, SCHEMA_VERSION_KEY};

use crate::common::write_output;
use crate::{opts, serve_api, CliError};

/// Per-subcommand help (see `ja help bench-serve`).
pub const HELP: &str = "\
ja bench-serve — load-generate against the scenario-evaluation service

USAGE:
    ja bench-serve [OPTIONS]

OPTIONS:
    --requests N     requests per phase                     [default: 64]
    --clients N      concurrent client connections          [default: 4]
    --addr HOST:PORT target an already-running server instead of the
                     default in-process one (the in-process server is
                     spawned on 127.0.0.1:0 and drained afterwards)
    --smoke          quick CI mode: 8 requests, 2 clients
    --json PATH      also write a kind:\"bench\" report with the median
                     per-request latency under the ids
                     serve/batch_miss and serve/batch_hit (merged into
                     BENCH_pr.json by CI's bench-smoke job)
    --out PATH       write the human-readable table to PATH

PHASES (each one batch_request per request, cache_info on):
    batch_miss   every request unique (the major-loop peak varies), so
                 each one evaluates a scenario — measures the full
                 parse + dispatch + evaluate + serialize path
    batch_hit    one warm-up, then identical requests — measures the
                 content-addressed cache path; every response must
                 arrive with X-Ja-Cache: hit

EXIT STATUS: 0 on success; 1 when any request fails or a batch_hit
response was not served from the cache.";

/// One phase's request template. `{peak}` is substituted per request in
/// the miss phase; the hit phase uses a fixed peak no miss request uses.
fn batch_request_body(peak: usize) -> String {
    format!(
        concat!(
            "{{\"schema_version\": 1, \"kind\": \"batch_request\", ",
            "\"grid\": {{\"material\": [\"date2006\"], \"backend\": [\"direct\"], ",
            "\"dh_max\": [10], ",
            "\"excitation\": [{{\"kind\": \"major\", \"peak\": {peak}, \"step\": 100, ",
            "\"cycles\": 1}}]}}, ",
            "\"options\": {{\"cache_info\": true}}}}"
        ),
        peak = peak
    )
}

/// A minimal blocking HTTP/1.1 client: one connection per request
/// (mirroring the server's `Connection: close` framing).
fn http_post(addr: SocketAddr, path: &str, body: &str) -> Result<Response, CliError> {
    let failure = |err: std::io::Error| CliError::failure(format!("request to {addr}: {err}"));
    let mut stream = TcpStream::connect(addr).map_err(failure)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(failure)?;
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .map_err(failure)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(failure)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| CliError::failure(format!("malformed response from {addr}")))?;
    let status = head
        .lines()
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| CliError::failure(format!("malformed status line from {addr}")))?;
    let cache_marker = head.lines().find_map(|line| {
        line.strip_prefix("X-Ja-Cache: ")
            .map(|value| value.to_owned())
    });
    Ok(Response {
        status,
        cache_marker,
        body: body.to_owned(),
    })
}

struct Response {
    status: u16,
    cache_marker: Option<String>,
    body: String,
}

struct PhaseResult {
    requests: usize,
    elapsed: Duration,
    /// Per-request latencies in nanoseconds, sorted ascending.
    latencies_ns: Vec<u64>,
}

impl PhaseResult {
    fn requests_per_second(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn percentile_ns(&self, percent: usize) -> u64 {
        let index = (self.latencies_ns.len() - 1) * percent / 100;
        self.latencies_ns[index]
    }
}

/// Runs one phase: `clients` threads drain a shared request counter.
/// `body_for(i)` builds request `i`'s document; `expect_hit` asserts the
/// cache marker on every response.
fn run_phase(
    addr: SocketAddr,
    requests: usize,
    clients: usize,
    expect_hit: bool,
    body_for: &(dyn Fn(usize) -> String + Sync),
) -> Result<PhaseResult, CliError> {
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(requests));
    let first_error: Mutex<Option<CliError>> = Mutex::new(None);
    let started = Instant::now();
    thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= requests || first_error.lock().unwrap().is_some() {
                    break;
                }
                let body = body_for(index);
                let request_started = Instant::now();
                let outcome = http_post(addr, "/v1/eval", &body).and_then(|response| {
                    if response.status != 200 {
                        return Err(CliError::failure(format!(
                            "request {index}: status {} ({})",
                            response.status,
                            response.body.trim()
                        )));
                    }
                    if expect_hit && response.cache_marker.as_deref() != Some("hit") {
                        return Err(CliError::failure(format!(
                            "request {index}: expected a cache hit, got marker {:?}",
                            response.cache_marker
                        )));
                    }
                    Ok(())
                });
                match outcome {
                    Ok(()) => {
                        let nanos =
                            u64::try_from(request_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        latencies.lock().unwrap().push(nanos);
                    }
                    Err(err) => {
                        first_error.lock().unwrap().get_or_insert(err);
                        break;
                    }
                }
            });
        }
    });
    if let Some(err) = first_error.into_inner().unwrap() {
        return Err(err);
    }
    let mut latencies_ns = latencies.into_inner().unwrap();
    latencies_ns.sort_unstable();
    Ok(PhaseResult {
        requests,
        elapsed: started.elapsed(),
        latencies_ns,
    })
}

fn run_load(
    addr: SocketAddr,
    requests: usize,
    clients: usize,
) -> Result<Vec<(String, PhaseResult)>, CliError> {
    // Misses: peaks 1000, 1001, ... are unique per request. The hit
    // phase's peak 999 is outside that range, warmed exactly once.
    let miss = run_phase(addr, requests, clients, false, &|index| {
        batch_request_body(1000 + index)
    })?;
    let warm = http_post(addr, "/v1/eval", &batch_request_body(999))?;
    if warm.status != 200 {
        return Err(CliError::failure(format!(
            "warm-up request failed with status {}",
            warm.status
        )));
    }
    let hit = run_phase(addr, requests, clients, true, &|_| batch_request_body(999))?;
    Ok(vec![
        ("batch_miss".to_owned(), miss),
        ("batch_hit".to_owned(), hit),
    ])
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failures when the server cannot start,
/// any request fails, or a hit-phase response bypassed the cache.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["smoke"],
        &["requests", "clients", "addr", "json", "out"],
    )?;
    parsed.no_positionals()?;

    let smoke = parsed.flag("smoke");
    let requests = parsed.usize_or("requests", if smoke { 8 } else { 64 })?;
    let clients = parsed.usize_or("clients", if smoke { 2 } else { 4 })?;
    if requests == 0 {
        return Err(CliError::usage("--requests must be at least 1".to_owned()));
    }

    let phases = match parsed.value("addr") {
        // External server: just generate load.
        Some(addr) => {
            let addr: SocketAddr = addr
                .parse()
                .map_err(|_| CliError::usage(format!("--addr `{addr}` is not HOST:PORT")))?;
            run_load(addr, requests, clients)?
        }
        // Default: spawn an in-process server on an ephemeral port and
        // drain it afterwards — the bench needs no running daemon.
        None => {
            let listener = std::net::TcpListener::bind("127.0.0.1:0")
                .map_err(|err| CliError::failure(format!("cannot bind 127.0.0.1:0: {err}")))?;
            let addr = listener
                .local_addr()
                .map_err(|err| CliError::failure(err.to_string()))?;
            let options = ServerOptions {
                workers: clients.max(1),
                // Deep enough that the bench never measures its own 503s.
                queue_depth: requests.max(16),
                max_body_bytes: 1024 * 1024,
                io_timeout: Duration::from_secs(30),
            };
            let shutdown = AtomicBool::new(false);
            let state = serve_api::ServeState {
                shutdown: &shutdown,
                cache: ResultCache::new(64 * 1024 * 1024),
                // Bench scenarios are tiny; a one-thread evaluation pool
                // keeps the measurement about serving, not thread spawn.
                eval_workers: 1,
            };
            thread::scope(|scope| {
                let server = scope.spawn(|| {
                    serve(listener, &options, &shutdown, |request| {
                        serve_api::handle_request(&state, request)
                    })
                });
                let phases = run_load(addr, requests, clients);
                shutdown.store(true, Ordering::Release);
                server
                    .join()
                    .expect("server thread")
                    .map_err(|err| CliError::failure(format!("serve: {err}")))?;
                phases
            })?
        }
    };

    let mut table = format!(
        "ja bench-serve: {requests} requests/phase, {clients} clients\n\
         {:<12} {:>10} {:>12} {:>12}\n",
        "phase", "req/s", "p50 ms", "p99 ms"
    );
    for (name, result) in &phases {
        table.push_str(&format!(
            "{:<12} {:>10.1} {:>12.3} {:>12.3}\n",
            name,
            result.requests_per_second(),
            result.percentile_ns(50) as f64 / 1e6,
            result.percentile_ns(99) as f64 / 1e6,
        ));
    }
    write_output(parsed.value("out"), &table)?;

    if let Some(path) = parsed.value("json") {
        let mut benches = JsonValue::object();
        for (name, result) in &phases {
            benches.push(format!("serve/{name}"), result.percentile_ns(50) as f64);
        }
        let doc = JsonValue::object()
            .with(SCHEMA_VERSION_KEY, SCHEMA_VERSION)
            .with("kind", "bench")
            .with("benches", benches);
        std::fs::write(path, doc.to_pretty_string())
            .map_err(|err| CliError::failure(format!("cannot write `{path}`: {err}")))?;
    }
    Ok(())
}
