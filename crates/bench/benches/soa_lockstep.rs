//! Scalar vs structure-of-arrays lockstep execution.
//!
//! Steps N parameter sets through the same major-loop field schedule with
//! (a) the scalar per-lane path — one `DirectTimeless` backend per lane,
//! built and driven exactly as a grid entry would be — and (b) the
//! [`SoaBatch`] lockstep kernel in f64 and f32 column modes, at lane counts
//! 4, 16 and 64.  The f64 SoA output is bit-identical to the scalar path
//! (asserted in `core::soa` and `tests/soa_equivalence.rs`); this bench
//! covers the performance side and prints the scalar-vs-SoA speedup at 16
//! lanes, the acceptance threshold tracked by the CI bench gate.

use std::time::Instant;

use criterion::{black_box, Criterion};
use hdl_models::scenario::BackendKind;
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::soa::{SoaBatch, SoaPrecision};
use magnetics::bh::BhCurve;
use magnetics::material::JaParameters;
use magnetics::units::Magnetisation;
use waveform::schedule::FieldSchedule;

const LANE_COUNTS: [usize; 3] = [4, 16, 64];

fn schedule() -> FieldSchedule {
    FieldSchedule::major_loop(10_000.0, 50.0, 2).expect("schedule")
}

/// Deterministic lane materials: the four presets, each nudged per lane so
/// no two lanes are identical (the grid/fitting workloads this models never
/// repeat a parameter set either).
fn lane_materials(lanes: usize) -> Vec<JaParameters> {
    let presets = [
        JaParameters::date2006(),
        JaParameters::jiles_atherton_1984(),
        JaParameters::soft_ferrite(),
        JaParameters::hard_steel(),
    ];
    (0..lanes)
        .map(|lane| {
            let mut params = presets[lane % presets.len()];
            let scale = 1.0 + 0.01 * (lane / presets.len()) as f64;
            params.m_sat = Magnetisation::new(params.m_sat.value() * scale);
            params.k *= scale;
            params
        })
        .collect()
}

/// The scalar grid path: one boxed backend per lane, one schedule sweep each.
fn run_scalar(materials: &[JaParameters], schedule: &FieldSchedule) -> Vec<BhCurve> {
    materials
        .iter()
        .map(|&params| {
            let mut backend = BackendKind::DirectTimeless
                .build(params, JaConfig::default())
                .expect("backend");
            backend.run_schedule(schedule).expect("sweep")
        })
        .collect()
}

/// The lockstep path: all lanes advanced through the shared sample sequence.
fn run_soa(
    batch: &mut SoaBatch,
    materials: &[JaParameters],
    samples: &[f64],
    curves: &mut Vec<BhCurve>,
) {
    batch.assign(materials);
    curves.resize_with(materials.len(), BhCurve::new);
    batch.run_samples_into_curves(samples, curves);
}

fn print_speedup_line() {
    let schedule = schedule();
    let samples = schedule.to_samples();
    let materials = lane_materials(16);
    let mut batch = SoaBatch::new(JaConfig::default(), SoaPrecision::F64).expect("batch");
    let mut curves = Vec::new();

    let time = |mut run: Box<dyn FnMut()>| {
        // One warm-up, then the median of 5 timed repetitions.
        run();
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                run();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };

    let scalar = time(Box::new(|| {
        black_box(run_scalar(&materials, &schedule));
    }));
    let soa = time(Box::new(|| {
        run_soa(&mut batch, &materials, &samples, &mut curves);
        black_box(&curves);
    }));
    println!("== soa lockstep: 16 lanes, major loop ±10 kA/m ==");
    println!(
        "scalar {:.2} ms, soa(f64) {:.2} ms -> scalar-vs-SoA speedup {:.2}x at 16 lanes\n",
        scalar * 1e3,
        soa * 1e3,
        scalar / soa
    );
}

fn benches(c: &mut Criterion) {
    let schedule = schedule();
    let samples = schedule.to_samples();
    let mut group = c.benchmark_group("soa_lockstep");
    group.sample_size(10);
    for lanes in LANE_COUNTS {
        let materials = lane_materials(lanes);
        group.bench_function(format!("scalar_lanes{lanes}"), |b| {
            b.iter(|| black_box(run_scalar(&materials, &schedule)))
        });
        for (label, precision) in [("f64", SoaPrecision::F64), ("f32", SoaPrecision::F32)] {
            let mut batch = SoaBatch::new(JaConfig::default(), precision).expect("batch");
            let mut curves = Vec::new();
            group.bench_function(format!("soa_{label}_lanes{lanes}"), |b| {
                b.iter(|| {
                    run_soa(&mut batch, &materials, &samples, &mut curves);
                    black_box(&curves);
                })
            });
        }
    }
    group.finish();
}

fn main() {
    print_speedup_line();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
