//! Versioned, machine-readable serialization of scenario/batch results.
//!
//! This module turns the scenario engine's in-memory results
//! ([`BatchReport`], [`ScenarioOutcome`], [`AgreementReport`]) into the
//! workspace's shared JSON report format (see [`ja_hysteresis::json`]): an
//! envelope of `schema_version` + `kind` followed by kind-specific fields.
//! The `ja` CLI emits these documents and CI consumes them, so two
//! properties are load-bearing:
//!
//! * **Determinism.** By default every timing-dependent field (wall-clock,
//!   worker count, speedup) is omitted, so the same scenario grid produces
//!   byte-identical reports regardless of worker count or machine load —
//!   `ja batch --workers 1` and `--workers 8` are asserted identical in the
//!   CLI's tests.  Passing `timings: true` opts into a `timing` object and
//!   per-entry `*_ns` fields for profiling consumers.
//! * **Stable keys.** Metric keys come from
//!   [`LoopMetrics::named_values`], statistics keys mirror
//!   [`JaStatistics`] field names; both are part of the schema and only
//!   change with a [`SCHEMA_VERSION`] bump.

use std::time::Duration;

use ja_hysteresis::json::{
    content_hash, JsonValue, StreamDigest, SCHEMA_VERSION, SCHEMA_VERSION_KEY,
};
use ja_hysteresis::model::JaStatistics;
use magnetics::loop_analysis::LoopMetrics;
use magnetics::losses::CoreLoss;
use magnetics::material::JaParameters;

use crate::fit::{FitReport, LoopFit, StartFit};
use crate::scenario::{AgreementReport, BatchEntry, BatchReport, ScenarioOutcome, TransientStats};

/// A fresh report object carrying the shared envelope: `schema_version`
/// first, then `kind`.
pub fn report_envelope(kind: &str) -> JsonValue {
    JsonValue::object()
        .with(SCHEMA_VERSION_KEY, SCHEMA_VERSION)
        .with("kind", kind)
}

/// Serialises loop metrics with the schema's unit-suffixed keys.
///
/// `negative_slope_samples` is written as an integer; the other five
/// metrics as floats.
pub fn metrics_value(metrics: &LoopMetrics) -> JsonValue {
    let mut obj = JsonValue::object();
    for (key, value) in metrics.named_values() {
        if key == "negative_slope_samples" {
            obj.push(key, value as i64);
        } else {
            obj.push(key, value);
        }
    }
    obj
}

/// Serialises the backend cost counters (keys mirror the
/// [`JaStatistics`] field names).
pub fn stats_value(stats: &JaStatistics) -> JsonValue {
    JsonValue::object()
        .with("samples", stats.samples)
        .with("updates", stats.updates)
        .with("slope_evaluations", stats.slope_evaluations)
        .with("negative_slope_events", stats.negative_slope_events)
        .with("rejected_updates", stats.rejected_updates)
}

/// Serialises the transient engine's step/Newton counters (keys mirror the
/// [`TransientStats`] field names).  Present only on circuit-driven
/// scenario entries; the counters are pure float-arithmetic step-control
/// outcomes — deterministic across worker counts and machines — so they
/// are NOT gated behind the opt-in timing fields.
pub fn transient_value(stats: &TransientStats) -> JsonValue {
    JsonValue::object()
        .with("accepted_steps", stats.accepted_steps)
        .with("rejected_steps", stats.rejected_steps)
        .with("newton_iterations", stats.newton_iterations)
        .with("lu_solves", stats.lu_solves)
        .with("non_converged_steps", stats.non_converged_steps)
}

/// A [`Duration`] as integer nanoseconds (saturating at `i64::MAX`, which
/// is ~292 years — no real run gets there).
pub fn duration_ns(duration: Duration) -> JsonValue {
    JsonValue::Int(i64::try_from(duration.as_nanos()).unwrap_or(i64::MAX))
}

/// Serialises a core-loss breakdown (keys mirror the [`CoreLoss`] field
/// names).  Present only on entries whose scenario ran at an operating
/// point carrying a geometry and a frequency; the values are pure float
/// arithmetic over the trace — deterministic across worker counts and
/// routing — so the object is NOT gated behind the opt-in timing fields.
pub fn loss_value(loss: &CoreLoss) -> JsonValue {
    JsonValue::object()
        .with("hysteresis_w", loss.hysteresis_w)
        .with("eddy_w", loss.eddy_w)
        .with("total_w", loss.total_w)
        .with("energy_per_cycle_j", loss.energy_per_cycle_j)
}

/// Serialises one successful scenario outcome.
///
/// Always present: `scenario`, `status: "ok"`, `backend`, `samples`,
/// `metrics` (object or `null` for traces that do not form a closable
/// loop) and `stats`.  Circuit-driven outcomes add a `transient` object
/// (see [`transient_value`]).  Outcomes carrying an operating point add
/// `temperature_c` and/or `frequency_hz` (whichever the point sets), and a
/// `loss` object (see [`loss_value`]) when the loss breakdown was
/// computed.  With `timings`, adds `runtime_ns` (sweep
/// only); for outcomes produced by a structure-of-arrays lockstep group,
/// `backend_routing: "soa"` plus `lockstep_lanes`; and for event-driven
/// backends, a `kernel` object with the simulation kernel's cost counters
/// (`delta_cycles`, `events_scheduled`, `process_activations`).
pub fn outcome_value(outcome: &ScenarioOutcome, timings: bool) -> JsonValue {
    let mut obj = JsonValue::object()
        .with("scenario", outcome.name.as_str())
        .with("status", "ok")
        .with("backend", outcome.backend.label())
        .with("samples", outcome.curve.len())
        .with(
            "metrics",
            outcome
                .metrics
                .as_ref()
                .map_or(JsonValue::Null, metrics_value),
        )
        .with("stats", stats_value(&outcome.stats));
    if let Some(transient) = &outcome.transient {
        obj.push("transient", transient_value(transient));
    }
    if let Some(op) = &outcome.operating_point {
        if let Some(t_c) = op.temperature_c {
            obj.push("temperature_c", t_c);
        }
        if let Some(frequency) = op.frequency_hz {
            obj.push("frequency_hz", frequency);
        }
    }
    if let Some(loss) = &outcome.loss {
        obj.push("loss", loss_value(loss));
    }
    if timings {
        obj.push("runtime_ns", duration_ns(outcome.runtime));
        // Routing is run-dependent scheduling detail, not result content
        // (SoA f64 lanes are bit-identical to scalar runs), so it rides
        // with the opt-in timing fields.
        if let Some(lanes) = outcome.lockstep_lanes {
            obj.push("backend_routing", "soa");
            obj.push("lockstep_lanes", lanes);
        }
        // Kernel counters are deterministic outcomes, but they describe the
        // simulation substrate's cost, not the physics, so they ride with
        // the opt-in timing fields to keep default reports byte-stable.
        if let Some(kernel) = &outcome.kernel {
            obj.push(
                "kernel",
                JsonValue::object()
                    .with("delta_cycles", kernel.delta_cycles)
                    .with("events_scheduled", kernel.events_scheduled)
                    .with("process_activations", kernel.process_activations),
            );
        }
    }
    obj
}

/// Serialises one batch entry (outcome or failure).
///
/// Failed entries get `status: "error"` (or `"cancelled"` for entries a
/// fail-fast batch never ran) and an `error` message instead of the
/// outcome fields.  With `timings`, adds `wall_clock_ns` (backend
/// construction + sweep + metric extraction on the worker).
pub fn entry_value(entry: &BatchEntry, timings: bool) -> JsonValue {
    let mut obj = stream_entry_value(&entry.scenario.name, &entry.outcome, timings);
    if timings {
        obj.push("wall_clock_ns", duration_ns(entry.wall_clock));
    }
    obj
}

/// The entry-shaped document for a scenario outcome that is **not** stored
/// in a [`BatchEntry`] — the form the streaming path serialises from, where
/// the outcome is dropped right after rendering.  Identical to
/// [`entry_value`] minus the wall-clock field (streamed records never carry
/// timings).
pub fn stream_entry_value(
    name: &str,
    outcome: &Result<ScenarioOutcome, ja_hysteresis::error::JaError>,
    timings: bool,
) -> JsonValue {
    match outcome {
        Ok(outcome) => outcome_value(outcome, timings),
        Err(err) => JsonValue::object()
            .with("scenario", name)
            .with(
                "status",
                if matches!(err, ja_hysteresis::error::JaError::Cancelled) {
                    "cancelled"
                } else {
                    "error"
                },
            )
            .with("error", err.to_string()),
    }
}

/// One NDJSON record line (newline-terminated) for grid entry `index`.
///
/// The record is the compact, insertion-ordered rendering of exactly the
/// entry object a stored `kind: "batch"` report would contain, prefixed
/// with the entry's grid `index` — records are emitted in index order, so a
/// streamed file is byte-identical across worker counts, and the index
/// makes each line self-identifying for consumers (and for resume
/// validation).  Timings are never included: streamed records are part of
/// the byte-determinism contract.
pub fn ndjson_record(
    index: usize,
    name: &str,
    outcome: &Result<ScenarioOutcome, ja_hysteresis::error::JaError>,
) -> String {
    let mut obj = JsonValue::object().with("index", index);
    if let JsonValue::Object(fields) = stream_entry_value(name, outcome, false) {
        for (key, value) in fields {
            obj.push(key, value);
        }
    }
    let mut line = obj.to_compact_string();
    line.push('\n');
    line
}

/// The final NDJSON manifest line (newline-terminated): a
/// `kind: "batch_manifest"` document sealing the stream with the grid
/// size, the success/failure counts and `entries_digest` — the 128-bit
/// FNV-1a digest (32 hex digits) of every preceding record line's bytes in
/// index order.
///
/// Because records are emitted in index order, the digest doubles as a
/// whole-stream integrity check: two streams with equal manifests are
/// byte-identical, whatever worker count (or interrupt/resume history)
/// produced them.  A missing manifest line marks a truncated stream.
pub fn ndjson_manifest(
    scenarios: usize,
    succeeded: usize,
    failed: usize,
    digest: &StreamDigest,
) -> String {
    let mut line = report_envelope("batch_manifest")
        .with("scenarios", scenarios)
        .with("succeeded", succeeded)
        .with("failed", failed)
        .with("entries_digest", format!("{:032x}", digest.value()))
        .to_compact_string();
    line.push('\n');
    line
}

/// A stable content address for a scenario grid: the [`content_hash`] of
/// the JSON array of scenario names in grid order.  Scenario names encode
/// excitation/backend/config/material, so a checkpoint stamped with this
/// digest refuses to resume against a different grid (or the same grid in
/// a different order — index-based resume depends on order).
pub fn grid_digest(scenarios: &[crate::scenario::Scenario]) -> u128 {
    content_hash(&JsonValue::Array(
        scenarios
            .iter()
            .map(|scenario| scenario.name.as_str().into())
            .collect(),
    ))
}

/// The checkpoint document a streaming batch flushes periodically so an
/// interrupted run can resume (`ja batch --resume <path>`) and still
/// produce output byte-identical to an uninterrupted run.
///
/// Everything resume needs is here: which grid the output belongs to
/// (`grid_digest`), how many records are durably in the output and how
/// many bytes they span (`entries`, `byte_offset` — the output is
/// truncated back to this offset, discarding any torn trailing record),
/// the running success/failure counts, and the suspended
/// [`StreamDigest`] state so the final manifest digest still covers every
/// record from entry 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// [`grid_digest`] of the scenario list the output was produced from.
    pub grid_digest: u128,
    /// Number of complete record lines covered by this checkpoint.
    pub entries: usize,
    /// Output-file byte length covering exactly those records.
    pub byte_offset: u64,
    /// `status: "ok"` records so far.
    pub succeeded: usize,
    /// Error/cancelled records so far.
    pub failed: usize,
    /// Suspended record-digest state ([`StreamDigest::state`]).
    pub digest_state: u128,
}

impl StreamCheckpoint {
    /// Serialises the checkpoint as a `kind: "batch_checkpoint"` document
    /// (pretty form — checkpoints are single small files, not stream
    /// records).
    pub fn to_json(&self) -> JsonValue {
        report_envelope("batch_checkpoint")
            .with("grid_digest", format!("{:032x}", self.grid_digest))
            .with("entries", self.entries)
            .with(
                "byte_offset",
                i64::try_from(self.byte_offset).unwrap_or(i64::MAX),
            )
            .with("succeeded", self.succeeded)
            .with("failed", self.failed)
            .with("digest_state", format!("{:032x}", self.digest_state))
    }

    /// Parses a checkpoint document, strictly: unknown kinds, missing
    /// fields, malformed hex and negative counts are all errors (a
    /// corrupted checkpoint must fail loudly, not resume wrongly).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|err| format!("malformed checkpoint: {err}"))?;
        if doc.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64) != Some(SCHEMA_VERSION) {
            return Err(format!(
                "checkpoint {SCHEMA_VERSION_KEY} is not {SCHEMA_VERSION}"
            ));
        }
        if doc.get("kind").and_then(JsonValue::as_str) != Some("batch_checkpoint") {
            return Err("checkpoint kind is not \"batch_checkpoint\"".to_owned());
        }
        let hex = |key: &str| -> Result<u128, String> {
            let text = doc
                .get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("checkpoint is missing `{key}`"))?;
            if text.len() != 32 {
                return Err(format!("checkpoint `{key}` is not 32 hex digits"));
            }
            u128::from_str_radix(text, 16)
                .map_err(|_| format!("checkpoint `{key}` is not 32 hex digits"))
        };
        let count = |key: &str| -> Result<usize, String> {
            let value = doc
                .get(key)
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| format!("checkpoint is missing `{key}`"))?;
            usize::try_from(value).map_err(|_| format!("checkpoint `{key}` is negative"))
        };
        Ok(Self {
            grid_digest: hex("grid_digest")?,
            entries: count("entries")?,
            byte_offset: count("byte_offset")? as u64,
            succeeded: count("succeeded")?,
            failed: count("failed")?,
            digest_state: hex("digest_state")?,
        })
    }
}

/// Streams a scenario grid into `out` as chunked NDJSON: one
/// [`ndjson_record`] per entry in index order, emitted as workers finish,
/// sealed by the [`ndjson_manifest`] line.  This is THE streaming batch
/// writer — `ja batch --format ndjson` and the served streamed
/// `batch_request` both call it, which is what makes a served stream
/// byte-identical to the offline file.
///
/// `resume` continues an interrupted run: entries `0..resume.entries` are
/// skipped (the caller has already positioned `out` — for a file, truncated
/// to `resume.byte_offset` and seeked to its end) and the record digest
/// resumes from the suspended state, so the completed output is
/// byte-identical to an uninterrupted run.  A checkpoint stamped with a
/// different [`grid_digest`] is rejected.
///
/// `after_record` runs after each record has been written, with the
/// checkpoint state covering everything written so far and with `out` —
/// the CLI's checkpoint cadence flushes `out` and persists the state from
/// here.  The returned checkpoint is the final state (every entry
/// recorded); the manifest's bytes are not part of `byte_offset`.
///
/// # Errors
///
/// Propagates write failures, `after_record` failures, and (as
/// [`std::io::ErrorKind::InvalidData`]) a resume checkpoint that does not
/// belong to `scenarios`.
pub fn write_ndjson_batch<W>(
    runner: &crate::exec::BatchRunner,
    scenarios: &[crate::scenario::Scenario],
    resume: Option<&StreamCheckpoint>,
    out: &mut W,
    mut after_record: impl FnMut(&StreamCheckpoint, &mut W) -> std::io::Result<()>,
) -> std::io::Result<StreamCheckpoint>
where
    W: std::io::Write + ?Sized,
{
    use std::io::{Error, ErrorKind};
    let grid = grid_digest(scenarios);
    let mut state = match resume {
        Some(checkpoint) => {
            if checkpoint.grid_digest != grid {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    "checkpoint does not belong to this grid (grid digest mismatch)",
                ));
            }
            if checkpoint.entries > scenarios.len() {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    "checkpoint records more entries than the grid holds",
                ));
            }
            *checkpoint
        }
        None => StreamCheckpoint {
            grid_digest: grid,
            entries: 0,
            byte_offset: 0,
            succeeded: 0,
            failed: 0,
            digest_state: StreamDigest::new().state(),
        },
    };
    let mut digest = StreamDigest::from_state(state.digest_state);
    runner.run_streamed(scenarios, state.entries, |index, outcome| {
        let record = ndjson_record(index, &scenarios[index].name, outcome);
        digest.update(record.as_bytes());
        out.write_all(record.as_bytes())?;
        state.entries = index + 1;
        state.byte_offset += record.len() as u64;
        if outcome.is_ok() {
            state.succeeded += 1;
        } else {
            state.failed += 1;
        }
        state.digest_state = digest.state();
        after_record(&state, out)
    })?;
    let manifest = ndjson_manifest(scenarios.len(), state.succeeded, state.failed, &digest);
    out.write_all(manifest.as_bytes())?;
    out.flush()?;
    Ok(state)
}

/// Serialises a whole batch run as a `kind: "batch"` report.
///
/// Deterministic fields: `scenarios`, `succeeded`, `failed` and the
/// input-ordered `entries`.  With `timings`, a trailing `timing` object
/// adds `workers`, `elapsed_ns`, `serial_ns` and `speedup` (all of which
/// vary run to run, which is why they are opt-in).
pub fn batch_report_value(report: &BatchReport, timings: bool) -> JsonValue {
    let mut obj = report_envelope("batch")
        .with("scenarios", report.entries.len())
        .with("succeeded", report.successes().count())
        .with("failed", report.entries.len() - report.successes().count())
        .with(
            "entries",
            JsonValue::Array(
                report
                    .entries
                    .iter()
                    .map(|entry| entry_value(entry, timings))
                    .collect(),
            ),
        );
    if timings {
        obj.push(
            "timing",
            JsonValue::object()
                .with("workers", report.workers)
                .with("elapsed_ns", duration_ns(report.elapsed))
                .with("serial_ns", duration_ns(report.serial_runtime()))
                .with("speedup", report.speedup()),
        );
    }
    obj
}

/// Serialises a backend-agreement comparison as a `kind: "compare"` report:
/// worst pairwise |ΔB| (absolute and relative to peak |B|), the worst pair,
/// and one outcome entry per backend.
pub fn agreement_value(report: &AgreementReport, timings: bool) -> JsonValue {
    report_envelope("compare")
        .with("max_abs_diff_b_t", report.max_abs_diff_b)
        .with("relative_diff", report.relative_diff)
        .with(
            "worst_pair",
            report.worst_pair.map_or(JsonValue::Null, |(a, b)| {
                JsonValue::Array(vec![a.label().into(), b.label().into()])
            }),
        )
        .with(
            "outcomes",
            JsonValue::Array(
                report
                    .outcomes
                    .iter()
                    .map(|outcome| outcome_value(outcome, timings))
                    .collect(),
            ),
        )
}

/// Serialises a JA parameter set with the schema's unit-suffixed keys.
pub fn params_value(params: &JaParameters) -> JsonValue {
    JsonValue::object()
        .with("m_sat_a_per_m", params.m_sat.value())
        .with("a_a_per_m", params.a)
        .with("a2_a_per_m", params.a2)
        .with("k_a_per_m", params.k)
        .with("alpha", params.alpha)
        .with("c", params.c)
}

/// Serialises one starting point of a multi-start fit: the `start`
/// parameters, `status` (`ok` | `error`), the `evaluations` this start
/// consumed (counted for failed starts too — a failing evaluation still
/// simulates), and on success the per-start `cost` and fitted `params`.
/// With `timings`, adds `wall_clock_ns`.
pub fn start_fit_value(entry: &StartFit, timings: bool) -> JsonValue {
    let mut obj = JsonValue::object().with("start", params_value(&entry.start));
    match &entry.result {
        Ok(result) => {
            obj.push("status", "ok");
            obj.push("cost", result.cost);
            obj.push("evaluations", entry.evaluations);
            obj.push("params", params_value(&result.params));
        }
        Err(err) => {
            obj.push("status", "error");
            obj.push("error", err.to_string());
            obj.push("evaluations", entry.evaluations);
        }
    }
    if timings {
        obj.push("wall_clock_ns", duration_ns(entry.wall_clock));
    }
    obj
}

/// Serialises one fitted loop: `loop` name, `input_samples`,
/// `h_peak_a_per_m`, the `measured` metrics, the per-start `entries`,
/// `best_start` (index | null) and the best start's `params`/`cost`
/// (null when every start failed) plus the aggregate `evaluations`.
pub fn loop_fit_value(loop_fit: &LoopFit, timings: bool) -> JsonValue {
    let best = loop_fit.best_fit();
    JsonValue::object()
        .with("loop", loop_fit.name.as_str())
        .with("input_samples", loop_fit.input_samples)
        .with("h_peak_a_per_m", loop_fit.h_peak)
        .with("measured", metrics_value(&loop_fit.measured))
        .with(
            "entries",
            JsonValue::Array(
                loop_fit
                    .starts
                    .iter()
                    .map(|entry| start_fit_value(entry, timings))
                    .collect(),
            ),
        )
        .with(
            "best_start",
            loop_fit
                .best
                .map_or(JsonValue::Null, |i| JsonValue::Int(i as i64)),
        )
        .with(
            "params",
            best.map_or(JsonValue::Null, |r| params_value(&r.params)),
        )
        .with("cost", best.map_or(JsonValue::Null, |r| r.cost.into()))
        .with("evaluations", loop_fit.evaluations())
}

/// Serialises a multi-start fit batch as a `kind: "fit"` report.
///
/// The envelope carries `starts` and `seed`; a single-loop report inlines
/// that loop's fields flat (the shape `ja fit --input` has always emitted,
/// now with the per-start `entries` added), while a library fit nests one
/// object per loop under `loops`.  Timing fields are opt-in via `timings`,
/// so the default report is byte-identical for any worker count.
pub fn fit_report_value(report: &FitReport, timings: bool) -> JsonValue {
    // The lossless cast is guaranteed by `MultiStartOptions::validate`,
    // which rejects seeds beyond i64::MAX before a batch runs.
    let mut obj = report_envelope("fit")
        .with("starts", report.starts)
        .with("seed", i64::try_from(report.seed).unwrap_or(i64::MAX));
    if let [only] = report.loops.as_slice() {
        if let JsonValue::Object(fields) = loop_fit_value(only, timings) {
            for (key, value) in fields {
                obj.push(key, value);
            }
        }
    } else {
        obj.push(
            "loops",
            JsonValue::Array(
                report
                    .loops
                    .iter()
                    .map(|loop_fit| loop_fit_value(loop_fit, timings))
                    .collect(),
            ),
        );
    }
    if timings {
        let mut timing = JsonValue::object()
            .with("workers", report.workers)
            .with("elapsed_ns", duration_ns(report.elapsed))
            .with("serial_ns", duration_ns(report.serial_runtime()))
            .with("speedup", report.speedup());
        // Routing is run-dependent scheduling detail, not result content
        // (SoA f64 lanes are bit-identical to scalar evaluation), so it
        // rides with the opt-in timing fields.
        if let Some(lanes) = report.lockstep_lanes {
            timing.push("backend_routing", "soa");
            timing.push("lockstep_lanes", lanes);
        }
        obj.push("timing", timing);
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BatchRunner;
    use crate::scenario::{backend_agreement, BackendKind, Excitation, Scenario, ScenarioGrid};
    use ja_hysteresis::config::JaConfig;
    use magnetics::material::JaParameters;

    fn grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .backends(BackendKind::TIMELESS)
            .config("dh10", JaConfig::default())
            .excitation(
                "major",
                Excitation::major_loop(10_000.0, 250.0, 1).expect("excitation"),
            )
    }

    #[test]
    fn batch_report_is_byte_identical_across_worker_counts() {
        let scenarios = grid().scenarios().expect("grid");
        let serial = BatchRunner::new().workers(1).run(scenarios.clone());
        let parallel = BatchRunner::new().workers(4).run(scenarios);
        let a = batch_report_value(&serial, false).to_pretty_string();
        let b = batch_report_value(&parallel, false).to_pretty_string();
        assert_eq!(a, b);
        // The opt-in timing block is what breaks the identity.
        let timed = batch_report_value(&serial, true).to_pretty_string();
        assert!(timed.contains("\"timing\""));
        assert!(timed.contains("\"workers\": 1"));
        assert!(!a.contains("workers"));
        assert!(!a.contains("_ns"));
    }

    #[test]
    fn batch_report_has_envelope_and_entry_fields() {
        let report = BatchRunner::new()
            .workers(1)
            .run(grid().scenarios().unwrap());
        let value = batch_report_value(&report, false);
        assert_eq!(
            value.get(SCHEMA_VERSION_KEY).and_then(JsonValue::as_i64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(value.get("kind").and_then(JsonValue::as_str), Some("batch"));
        assert_eq!(value.get("scenarios").and_then(JsonValue::as_i64), Some(3));
        assert_eq!(value.get("succeeded").and_then(JsonValue::as_i64), Some(3));
        assert_eq!(value.get("failed").and_then(JsonValue::as_i64), Some(0));
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 3);
        for entry in entries {
            assert_eq!(entry.get("status").and_then(JsonValue::as_str), Some("ok"));
            assert!(entry.get("scenario").is_some());
            let metrics = entry.get("metrics").unwrap().as_object().unwrap();
            let expected: Vec<&str> = LoopMetrics::named_values(
                &magnetics::loop_analysis::loop_metrics(
                    &Scenario::fig1(BackendKind::DirectTimeless, 100.0)
                        .unwrap()
                        .run()
                        .unwrap()
                        .curve,
                )
                .unwrap(),
            )
            .iter()
            .map(|(k, _)| *k)
            .collect();
            let got: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(got, expected, "metric keys match LoopMetrics::named_values");
            let stats = entry.get("stats").unwrap().as_object().unwrap();
            assert_eq!(stats[0].0, "samples");
            assert_eq!(stats.len(), 5);
        }
        // The serialized document parses back.
        let text = value.to_pretty_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
    }

    #[test]
    fn failed_and_cancelled_entries_are_distinguished() {
        let bad = Scenario::new(
            "bad",
            JaParameters::date2006(),
            JaConfig::default().with_dh_max(-1.0),
            BackendKind::DirectTimeless,
            Excitation::major_loop(10_000.0, 250.0, 1).unwrap(),
        );
        let good = Scenario::fig1(BackendKind::DirectTimeless, 250.0).unwrap();
        let report = BatchRunner::new().workers(1).fail_fast().run([bad, good]);
        let value = batch_report_value(&report, false);
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(
            entries[0].get("status").and_then(JsonValue::as_str),
            Some("error")
        );
        assert!(entries[0].get("error").is_some());
        assert!(entries[0].get("metrics").is_none());
        assert_eq!(
            entries[1].get("status").and_then(JsonValue::as_str),
            Some("cancelled")
        );
        assert_eq!(value.get("failed").and_then(JsonValue::as_i64), Some(2));
    }

    #[test]
    fn circuit_entries_carry_transient_stats_and_stay_deterministic() {
        use crate::scenario::{CircuitExcitation, StepControl};
        // A mixed grid: one field-driven and two circuit-driven scenarios
        // (fixed and adaptive control).  The report must be byte-identical
        // across worker counts — the transient counters are deterministic
        // step-control outcomes, not timings.
        let adaptive = CircuitExcitation::inrush()
            .with_step_control(StepControl::Adaptive(CircuitExcitation::adaptive_defaults()));
        let grid = ScenarioGrid::new()
            .backend(BackendKind::DirectTimeless)
            .excitation("major", Excitation::major_loop(10_000.0, 250.0, 1).unwrap())
            .excitation(
                "inrush-fixed",
                Excitation::Circuit(CircuitExcitation::inrush()),
            )
            .excitation("inrush-adaptive", Excitation::Circuit(adaptive));
        let scenarios = grid.scenarios().unwrap();
        let serial = BatchRunner::new().workers(1).run(scenarios.clone());
        let parallel = BatchRunner::new().workers(4).run(scenarios);
        let a = batch_report_value(&serial, false).to_pretty_string();
        let b = batch_report_value(&parallel, false).to_pretty_string();
        assert_eq!(a, b, "mixed batch reports must not depend on workers");

        let value = batch_report_value(&serial, false);
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 3);
        assert!(
            entries[0].get("transient").is_none(),
            "field-driven entries carry no transient object"
        );
        for entry in &entries[1..] {
            let transient = entry.get("transient").unwrap().as_object().unwrap();
            let keys: Vec<&str> = transient.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                [
                    "accepted_steps",
                    "rejected_steps",
                    "newton_iterations",
                    "lu_solves",
                    "non_converged_steps"
                ]
            );
            assert!(
                transient[0].1.as_i64().unwrap() > 0,
                "accepted_steps present and positive"
            );
        }
        // The adaptive entry took fewer steps than the fixed one.
        let steps = |entry: &JsonValue| {
            entry
                .get("transient")
                .and_then(|t| t.get("accepted_steps"))
                .and_then(JsonValue::as_i64)
                .unwrap()
        };
        assert!(steps(&entries[2]) < steps(&entries[1]));
    }

    #[test]
    fn fit_report_inlines_single_loops_and_nests_libraries() {
        use crate::fit::{fit_batch, FitJob, MultiStartOptions};
        use ja_hysteresis::backend::HysteresisBackend;
        use ja_hysteresis::fitting::FitOptions;
        use ja_hysteresis::model::JilesAtherton;

        let measured = |params: JaParameters| {
            let mut model = JilesAtherton::new(params).unwrap();
            model
                .run_schedule(
                    &waveform::schedule::FieldSchedule::major_loop(10_000.0, 250.0, 2).unwrap(),
                )
                .unwrap()
        };
        let options = MultiStartOptions {
            starts: 3,
            workers: 2,
            fit: FitOptions {
                passes: 1,
                sweep_step: 500.0,
                ..FitOptions::default()
            },
            ..MultiStartOptions::default()
        };

        // Single loop: flat fields, ja-fit compatible.
        let single = fit_batch(
            vec![FitJob::with_auto_peak(
                "date2006",
                measured(JaParameters::date2006()),
            )],
            &options,
        )
        .unwrap();
        let value = fit_report_value(&single, false);
        assert_eq!(value.get("kind").and_then(JsonValue::as_str), Some("fit"));
        assert_eq!(value.get("starts").and_then(JsonValue::as_i64), Some(3));
        assert_eq!(value.get("seed").and_then(JsonValue::as_i64), Some(42));
        assert_eq!(
            value.get("loop").and_then(JsonValue::as_str),
            Some("date2006")
        );
        assert!(value.get("loops").is_none(), "single loop inlines flat");
        assert!(value.get("h_peak_a_per_m").is_some());
        assert!(value.get("measured").is_some());
        let entries = value.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 3);
        for entry in entries {
            assert_eq!(entry.get("status").and_then(JsonValue::as_str), Some("ok"));
            assert!(entry.get("start").is_some());
            assert!(entry.get("cost").and_then(JsonValue::as_f64).is_some());
            let params = entry.get("params").unwrap().as_object().unwrap();
            assert_eq!(params[0].0, "m_sat_a_per_m");
            assert_eq!(params.len(), 6);
            assert!(entry.get("wall_clock_ns").is_none(), "timings are opt-in");
        }
        let best = value.get("best_start").and_then(JsonValue::as_i64).unwrap();
        let best_cost = entries[best as usize]
            .get("cost")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(
            value.get("cost").and_then(JsonValue::as_f64),
            Some(best_cost)
        );
        assert!(value.get("timing").is_none());
        // The document parses back.
        let text = value.to_pretty_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);

        // A library fit nests per-loop objects.
        let library = fit_batch(
            vec![
                FitJob::with_auto_peak("date2006", measured(JaParameters::date2006())),
                FitJob::with_auto_peak("hard-steel", measured(JaParameters::hard_steel())),
            ],
            &options,
        )
        .unwrap();
        let value = fit_report_value(&library, true);
        let loops = value.get("loops").unwrap().as_array().unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(
            loops[1].get("loop").and_then(JsonValue::as_str),
            Some("hard-steel")
        );
        assert!(
            value.get("measured").is_none(),
            "library form has no flat loop"
        );
        assert!(value.get("timing").is_some(), "--timings adds the block");
        let entry = &loops[0].get("entries").unwrap().as_array().unwrap()[0];
        assert!(entry.get("wall_clock_ns").is_some());
    }

    #[test]
    fn operating_point_entries_carry_loss_and_stay_deterministic() {
        use crate::scenario::OperatingPoint;
        use magnetics::geometry::CoreGeometry;
        use magnetics::losses::LaminationSpec;
        let op = OperatingPoint::at_temperature(85.0)
            .with_frequency(50.0)
            .with_geometry(CoreGeometry::demo())
            .with_lamination(LaminationSpec::silicon_steel_0p35mm());
        let op_grid = grid()
            .material("date2006", JaParameters::date2006())
            .material("hard-steel", JaParameters::hard_steel())
            .operating_point("t85", op);
        let scenarios = op_grid.scenarios().expect("grid");
        let serial = BatchRunner::new().workers(1).run(scenarios.clone());
        let parallel = BatchRunner::new().workers(4).run(scenarios);
        let a = batch_report_value(&serial, false).to_pretty_string();
        let b = batch_report_value(&parallel, false).to_pretty_string();
        assert_eq!(a, b, "loss reports must not depend on workers");

        let value = batch_report_value(&serial, false);
        let entries = value.get("entries").unwrap().as_array().unwrap();
        for entry in entries {
            assert_eq!(
                entry.get("temperature_c").and_then(JsonValue::as_f64),
                Some(85.0)
            );
            assert_eq!(
                entry.get("frequency_hz").and_then(JsonValue::as_f64),
                Some(50.0)
            );
            let loss = entry.get("loss").unwrap().as_object().unwrap();
            let keys: Vec<&str> = loss.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                ["hysteresis_w", "eddy_w", "total_w", "energy_per_cycle_j"]
            );
            for (key, value) in loss {
                assert!(value.as_f64().unwrap() > 0.0, "{key}");
            }
            assert_eq!(
                entry
                    .get("scenario")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .split('/')
                    .count(),
                5,
                "operating-point entries carry the fifth name segment"
            );
        }
        // Entries without an operating point stay byte-identical to the
        // historical shape: no loss, no temperature, no frequency keys.
        let plain = BatchRunner::new()
            .workers(1)
            .run(grid().scenarios().unwrap());
        let plain = batch_report_value(&plain, false).to_pretty_string();
        assert!(!plain.contains("\"loss\""));
        assert!(!plain.contains("temperature_c"));
        assert!(!plain.contains("frequency_hz"));
    }

    #[test]
    fn non_loop_metrics_serialise_as_null() {
        // A biased minor loop never crosses B = 0 -> metrics are None.
        let scenario = Scenario::new(
            "biased",
            JaParameters::date2006(),
            JaConfig::default(),
            BackendKind::DirectTimeless,
            Excitation::biased_minor_loop(9_000.0, 500.0, 1, 50.0).unwrap(),
        );
        let outcome = scenario.run().unwrap();
        assert!(outcome.metrics.is_none());
        let value = outcome_value(&outcome, false);
        assert_eq!(value.get("metrics"), Some(&JsonValue::Null));
    }

    #[test]
    fn agreement_report_serialises_with_envelope() {
        let report = backend_agreement(
            JaParameters::date2006(),
            JaConfig::default(),
            &Excitation::major_loop(10_000.0, 250.0, 1).unwrap(),
            &BackendKind::TIMELESS,
        )
        .unwrap();
        let value = agreement_value(&report, false);
        assert_eq!(
            value.get("kind").and_then(JsonValue::as_str),
            Some("compare")
        );
        assert!(value
            .get("max_abs_diff_b_t")
            .and_then(JsonValue::as_f64)
            .is_some());
        let pair = value.get("worst_pair").unwrap().as_array().unwrap();
        assert_eq!(pair.len(), 2);
        assert_eq!(value.get("outcomes").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn duration_ns_saturates() {
        assert_eq!(
            duration_ns(Duration::from_nanos(1500)),
            JsonValue::Int(1500)
        );
        assert_eq!(duration_ns(Duration::MAX), JsonValue::Int(i64::MAX));
    }

    /// Streams `scenarios` to a buffer with `workers`, no resume.
    fn stream_to_bytes(scenarios: &[Scenario], workers: usize) -> (Vec<u8>, StreamCheckpoint) {
        let mut out = Vec::new();
        let state = write_ndjson_batch(
            &BatchRunner::new().workers(workers),
            scenarios,
            None,
            &mut out,
            |_, _| Ok(()),
        )
        .expect("in-memory stream");
        (out, state)
    }

    #[test]
    fn ndjson_records_mirror_the_stored_entries() {
        let scenarios = grid().scenarios().expect("grid");
        let (bytes, state) = stream_to_bytes(&scenarios, 1);
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), scenarios.len() + 1, "records + manifest");

        let stored = BatchRunner::new().workers(1).run(scenarios.clone());
        let stored_entries = batch_report_value(&stored, false);
        let stored_entries = stored_entries.get("entries").unwrap().as_array().unwrap();
        for (index, line) in lines[..scenarios.len()].iter().enumerate() {
            let record = JsonValue::parse(line).expect("record parses");
            assert_eq!(
                record.get("index").and_then(JsonValue::as_i64),
                Some(index as i64)
            );
            // Index aside, the record is exactly the stored entry object.
            let mut expected = JsonValue::object().with("index", index);
            if let JsonValue::Object(fields) = stored_entries[index].clone() {
                for (key, value) in fields {
                    expected.push(key, value);
                }
            }
            assert_eq!(record, expected);
        }

        // The manifest seals counts and the running record digest.
        let manifest = JsonValue::parse(lines[scenarios.len()]).expect("manifest parses");
        assert_eq!(
            manifest.get("kind").and_then(JsonValue::as_str),
            Some("batch_manifest")
        );
        assert_eq!(
            manifest.get("scenarios").and_then(JsonValue::as_i64),
            Some(scenarios.len() as i64)
        );
        let mut digest = StreamDigest::new();
        digest.update(&text.as_bytes()[..state.byte_offset as usize]);
        assert_eq!(
            manifest.get("entries_digest").and_then(JsonValue::as_str),
            Some(format!("{:032x}", digest.value()).as_str())
        );
    }

    #[test]
    fn ndjson_stream_is_byte_identical_across_worker_counts() {
        let scenarios = grid().scenarios().expect("grid");
        let (reference, _) = stream_to_bytes(&scenarios, 1);
        for workers in [2, 8] {
            let (bytes, _) = stream_to_bytes(&scenarios, workers);
            assert_eq!(
                bytes, reference,
                "{workers}-worker NDJSON diverged from single-worker"
            );
        }
    }

    #[test]
    fn ndjson_resume_is_byte_identical_to_uninterrupted() {
        let scenarios = grid().scenarios().expect("grid");
        let (reference, _) = stream_to_bytes(&scenarios, 2);

        // Interrupt after two records: capture the checkpoint state, keep
        // the bytes written so far plus a torn half-record the truncation
        // step must discard.
        let mut out = Vec::new();
        let mut checkpoint = None;
        let interrupted = write_ndjson_batch(
            &BatchRunner::new().workers(2),
            &scenarios,
            None,
            &mut out,
            |state, _| {
                if state.entries == 2 {
                    checkpoint = Some(*state);
                    return Err(std::io::Error::other("interrupted"));
                }
                Ok(())
            },
        );
        assert!(interrupted.is_err());
        let checkpoint = checkpoint.expect("checkpointed before the interrupt");
        out.truncate(checkpoint.byte_offset as usize);
        out.extend_from_slice(b"{\"index\":2,\"scen"); // torn tail

        // Resume: truncate to the checkpoint offset, continue.
        out.truncate(checkpoint.byte_offset as usize);
        let final_state = write_ndjson_batch(
            &BatchRunner::new().workers(8),
            &scenarios,
            Some(&checkpoint),
            &mut out,
            |_, _| Ok(()),
        )
        .expect("resumed stream");
        assert_eq!(out, reference);
        assert_eq!(final_state.entries, scenarios.len());
        assert_eq!(final_state.succeeded + final_state.failed, scenarios.len());
    }

    #[test]
    fn ndjson_resume_rejects_a_foreign_grid() {
        let scenarios = grid().scenarios().expect("grid");
        let mut foreign = StreamCheckpoint {
            grid_digest: 1,
            entries: 0,
            byte_offset: 0,
            succeeded: 0,
            failed: 0,
            digest_state: StreamDigest::new().state(),
        };
        let mut out = Vec::new();
        let err = write_ndjson_batch(
            &BatchRunner::new(),
            &scenarios,
            Some(&foreign),
            &mut out,
            |_, _| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Matching digest but impossible entry count is rejected too.
        foreign.grid_digest = grid_digest(&scenarios);
        foreign.entries = scenarios.len() + 1;
        let err = write_ndjson_batch(
            &BatchRunner::new(),
            &scenarios,
            Some(&foreign),
            &mut out,
            |_, _| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn checkpoint_document_round_trips_strictly() {
        let checkpoint = StreamCheckpoint {
            grid_digest: 0xfeed_beef_0123,
            entries: 7,
            byte_offset: 1234,
            succeeded: 6,
            failed: 1,
            digest_state: u128::MAX,
        };
        let text = checkpoint.to_json().to_pretty_string();
        assert_eq!(StreamCheckpoint::parse(&text), Ok(checkpoint));
        // Corruptions fail loudly.
        for (broken, what) in [
            (text.replace("batch_checkpoint", "batch"), "kind"),
            (
                text.replace("\"entries\": 7", "\"entries\": -7"),
                "negative",
            ),
            (
                text.replace("\"schema_version\": 1", "\"schema_version\": 2"),
                "version",
            ),
            (text.replace("ffffffff", "zzzzzzzz"), "hex"),
            (text[..text.len() / 2].to_owned(), "truncated"),
        ] {
            assert!(StreamCheckpoint::parse(&broken).is_err(), "{what}");
        }
    }

    #[test]
    fn grid_digest_tracks_grid_identity_and_order() {
        let scenarios = grid().scenarios().expect("grid");
        let mut reordered = scenarios.clone();
        reordered.swap(0, 1);
        assert_eq!(grid_digest(&scenarios), grid_digest(&scenarios));
        assert_ne!(grid_digest(&scenarios), grid_digest(&reordered));
        assert_ne!(grid_digest(&scenarios), grid_digest(&scenarios[1..]));
    }
}
