//! Explicit fixed-step integrators: forward Euler, Heun and classic RK4.

use crate::error::SolverError;
use crate::ode::{validate_fixed_step, FixedStepIntegrator, OdeSystem, Trajectory};

/// Forward (explicit) Euler — the method the paper's timeless discretisation
/// uses, applied here over *time* so the baseline and the contribution share
/// the same order of accuracy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardEuler;

/// Heun's method (explicit trapezoidal / RK2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Heun;

/// The classic fourth-order Runge–Kutta method.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rk4;

impl FixedStepIntegrator for ForwardEuler {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<Trajectory, SolverError> {
        let steps = validate_fixed_step(system.dim(), y0, t0, t_end, dt)?;
        let n = system.dim();
        let mut times = Vec::with_capacity(steps + 1);
        let mut states = Vec::with_capacity(steps + 1);
        let mut y = y0.to_vec();
        let mut k = vec![0.0; n];
        let mut evals = 0usize;
        times.push(t0);
        states.push(y.clone());
        let mut t = t0;
        for _ in 0..steps {
            let h = dt.min(t_end - t);
            system.rhs(t, &y, &mut k);
            evals += 1;
            for i in 0..n {
                y[i] += h * k[i];
            }
            t += h;
            times.push(t);
            states.push(y.clone());
        }
        Ok(Trajectory::new(times, states, evals))
    }
}

impl FixedStepIntegrator for Heun {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<Trajectory, SolverError> {
        let steps = validate_fixed_step(system.dim(), y0, t0, t_end, dt)?;
        let n = system.dim();
        let mut times = Vec::with_capacity(steps + 1);
        let mut states = Vec::with_capacity(steps + 1);
        let mut y = y0.to_vec();
        let (mut k1, mut k2, mut y_pred) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut evals = 0usize;
        times.push(t0);
        states.push(y.clone());
        let mut t = t0;
        for _ in 0..steps {
            let h = dt.min(t_end - t);
            system.rhs(t, &y, &mut k1);
            for i in 0..n {
                y_pred[i] = y[i] + h * k1[i];
            }
            system.rhs(t + h, &y_pred, &mut k2);
            evals += 2;
            for i in 0..n {
                y[i] += 0.5 * h * (k1[i] + k2[i]);
            }
            t += h;
            times.push(t);
            states.push(y.clone());
        }
        Ok(Trajectory::new(times, states, evals))
    }
}

impl FixedStepIntegrator for Rk4 {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<Trajectory, SolverError> {
        let steps = validate_fixed_step(system.dim(), y0, t0, t_end, dt)?;
        let n = system.dim();
        let mut times = Vec::with_capacity(steps + 1);
        let mut states = Vec::with_capacity(steps + 1);
        let mut y = y0.to_vec();
        let (mut k1, mut k2, mut k3, mut k4) =
            (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut scratch = vec![0.0; n];
        let mut evals = 0usize;
        times.push(t0);
        states.push(y.clone());
        let mut t = t0;
        for _ in 0..steps {
            let h = dt.min(t_end - t);
            system.rhs(t, &y, &mut k1);
            for i in 0..n {
                scratch[i] = y[i] + 0.5 * h * k1[i];
            }
            system.rhs(t + 0.5 * h, &scratch, &mut k2);
            for i in 0..n {
                scratch[i] = y[i] + 0.5 * h * k2[i];
            }
            system.rhs(t + 0.5 * h, &scratch, &mut k3);
            for i in 0..n {
                scratch[i] = y[i] + h * k3[i];
            }
            system.rhs(t + h, &scratch, &mut k4);
            evals += 4;
            for i in 0..n {
                y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            t += h;
            times.push(t);
            states.push(y.clone());
        }
        Ok(Trajectory::new(times, states, evals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dy/dt = -y, y(0) = 1  ->  y(t) = exp(-t)
    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -y[0];
        }
    }

    /// Harmonic oscillator: y'' = -y  as first-order system.
    struct Oscillator;
    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = y[1];
            dydt[1] = -y[0];
        }
    }

    #[test]
    fn forward_euler_first_order_accuracy() {
        let exact = (-1.0_f64).exp();
        let coarse = ForwardEuler
            .integrate(&Decay, &[1.0], 0.0, 1.0, 1e-2)
            .unwrap()
            .last_state()[0];
        let fine = ForwardEuler
            .integrate(&Decay, &[1.0], 0.0, 1.0, 1e-3)
            .unwrap()
            .last_state()[0];
        let err_coarse = (coarse - exact).abs();
        let err_fine = (fine - exact).abs();
        // First order: error should shrink roughly 10x for a 10x smaller step.
        assert!(err_fine < err_coarse / 5.0);
    }

    #[test]
    fn heun_second_order_accuracy() {
        let exact = (-1.0_f64).exp();
        let coarse = Heun.integrate(&Decay, &[1.0], 0.0, 1.0, 1e-2).unwrap();
        let fine = Heun.integrate(&Decay, &[1.0], 0.0, 1.0, 1e-3).unwrap();
        let err_coarse = (coarse.last_state()[0] - exact).abs();
        let err_fine = (fine.last_state()[0] - exact).abs();
        assert!(err_fine < err_coarse / 50.0);
        assert_eq!(coarse.rhs_evaluations(), 200);
    }

    #[test]
    fn rk4_is_very_accurate() {
        let result = Rk4.integrate(&Decay, &[1.0], 0.0, 1.0, 1e-2).unwrap();
        assert!((result.last_state()[0] - (-1.0_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rk4_conserves_oscillator_energy_approximately() {
        let result = Rk4
            .integrate(
                &Oscillator,
                &[1.0, 0.0],
                0.0,
                2.0 * std::f64::consts::PI,
                1e-3,
            )
            .unwrap();
        let last = result.last_state();
        // After one full period the state returns to (1, 0).
        assert!((last[0] - 1.0).abs() < 1e-8);
        assert!(last[1].abs() < 1e-8);
    }

    #[test]
    fn trajectory_includes_initial_state_and_end_time() {
        let result = ForwardEuler
            .integrate(&Decay, &[1.0], 0.0, 0.55, 0.1)
            .unwrap();
        assert_eq!(result.states()[0], vec![1.0]);
        let last_t = *result.times().last().unwrap();
        assert!((last_t - 0.55).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ForwardEuler
            .integrate(&Decay, &[1.0, 2.0], 0.0, 1.0, 0.1)
            .is_err());
        assert!(Heun.integrate(&Decay, &[1.0], 0.0, 1.0, -0.1).is_err());
        assert!(Rk4.integrate(&Decay, &[1.0], 1.0, 0.0, 0.1).is_err());
    }
}
