//! `ja lossmap` — sweep frequency × amplitude × temperature per material
//! and emit a `kind:"loss_map"` report: one loss breakdown per operating
//! point plus a fitted two-exponent Steinmetz law per material.
//!
//! The map rides entirely on the scenario pipeline: each point is a major
//! loop run at an [`hdl_models::scenario::OperatingPoint`] carrying the
//! temperature (thermal parameter scaling), the excitation frequency and
//! the core geometry, so the per-point loss objects are exactly what
//! `ja batch` would report for the equivalent grid — and byte-identical
//! for any `--workers` / `--routing` value.

use hdl_models::exec::BatchRunner;
use hdl_models::report::{loss_value, report_envelope};
use hdl_models::scenario::{BackendKind, OperatingPoint, ScenarioGrid};
use ja_hysteresis::config::JaConfig;
use ja_hysteresis::json::JsonValue;
use magnetics::geometry::CoreGeometry;
use magnetics::losses::{fit_steinmetz_full, LaminationSpec};

use crate::common::{
    config_name, material_by_name, routing_by_name, thermal_by_name, write_output, NamedExcitation,
};
use crate::{opts, CliError};

/// Per-subcommand help (see `ja help lossmap`).
pub const HELP: &str = "\
ja lossmap — sweep frequency x amplitude x temperature per material and
report core loss per operating point plus a fitted Steinmetz law

USAGE:
    ja lossmap [OPTIONS]

GRID (colon-separated lists; the map is their cartesian product):
    --materials LIST    comma-separated presets         [default: date2006]
    --frequencies LIST  excitation frequencies (Hz)     [default: 50:100:200]
    --amplitudes LIST   major-loop field peaks (A/m)    [default: 5000:10000]
    --temperatures LIST operating temperatures (degC)   [default: 25]
    --step A_PER_M      field step of the major loops   [default: 50]
    --dh-max A_PER_M    timeless discretisation         [default: 10]

CORE:
    --area M2           core cross-section              [default: 1e-4]
    --path M            magnetic path length            [default: 0.1]
    --laminated         add the classical eddy-current term for 0.35 mm
                        silicon-steel laminations

EXECUTION:
    --workers N         worker threads; 0 = one per core [default: 0]
    --routing MODE      auto | soa | scalar              [default: auto]
    --out PATH          write to PATH instead of stdout

The report is `kind: \"loss_map\"`: the envelope plus
    points     int    map size
    succeeded  int    points with status ok
    failed     int    points that errored
    entries    array  one object per point, in grid order: scenario,
                      status, then (ok only) material, peak_h_a_per_m,
                      frequency_hz, temperature_c, b_pk_t and the loss
                      object (hysteresis_w, eddy_w, total_w,
                      energy_per_cycle_j), or (error only) error
    fits       array  per material: material, points, then the Steinmetz
                      fit P = k * f^alpha * B_pk^beta as k, alpha, beta —
                      or error when the map does not constrain the fit
Reports are byte-identical for any --workers / --routing value.

EXIT STATUS: 0 when every point succeeded, 1 otherwise (the report is
written either way).";

/// Parses a colon-separated `f64` list option, e.g. `--frequencies
/// 50:100:200`.
fn f64_list(parsed: &opts::Parsed, name: &str, default: &str) -> Result<Vec<f64>, CliError> {
    parsed
        .value(name)
        .unwrap_or(default)
        .split(':')
        .map(|token| {
            let token = token.trim();
            match token.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(v),
                _ => Err(CliError::usage(format!(
                    "--{name} expects a colon-separated list of finite numbers, got `{token}`"
                ))),
            }
        })
        .collect()
}

/// Runs the subcommand.
///
/// # Errors
///
/// Usage errors for bad options; failure when any point failed (after
/// writing the report) or output fails.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let parsed = opts::parse(
        args,
        &["laminated"],
        &[
            "materials",
            "frequencies",
            "amplitudes",
            "temperatures",
            "step",
            "dh-max",
            "area",
            "path",
            "workers",
            "routing",
            "out",
        ],
    )?;
    parsed.no_positionals()?;

    let materials: Vec<&str> = parsed
        .value("materials")
        .unwrap_or("date2006")
        .split(',')
        .map(str::trim)
        .collect();
    let frequencies = f64_list(&parsed, "frequencies", "50:100:200")?;
    let amplitudes = f64_list(&parsed, "amplitudes", "5000:10000")?;
    let temperatures = f64_list(&parsed, "temperatures", "25")?;
    let step = parsed.f64_or("step", 50.0)?;
    let dh_max = parsed.f64_or("dh-max", 10.0)?;
    let area = parsed.f64_or("area", 1e-4)?;
    let path = parsed.f64_or("path", 0.1)?;
    let geometry = CoreGeometry::new(area, path).map_err(|err| CliError::usage(err.to_string()))?;
    let lamination = parsed
        .flag("laminated")
        .then(LaminationSpec::silicon_steel_0p35mm);

    let config = JaConfig::default().with_dh_max(dh_max);
    config
        .validate()
        .map_err(|err| CliError::usage(err.to_string()))?;
    let mut grid = ScenarioGrid::new()
        .backends([BackendKind::DirectTimeless])
        .config(config_name(dh_max), config);
    for name in &materials {
        let params = material_by_name(name)?;
        let thermal = thermal_by_name(name)?;
        grid = grid.material_with_thermal(*name, params, thermal);
    }
    for &amplitude in &amplitudes {
        let named = NamedExcitation::major(amplitude, step, 1)?;
        grid = grid.excitation(named.name, named.excitation);
    }
    // The operating-point axis carries (frequency, temperature) pairs —
    // frequency innermost, so per-material runs group by temperature and
    // the SoA router sees maximal lockstep lanes per point.
    for &t_c in &temperatures {
        for &frequency in &frequencies {
            let mut op = OperatingPoint::at_temperature(t_c)
                .with_frequency(frequency)
                .with_geometry(geometry);
            if let Some(lamination) = lamination {
                op = op.with_lamination(lamination);
            }
            op.validate()
                .map_err(|err| CliError::usage(err.to_string()))?;
            grid = grid.operating_point(format!("f{frequency}_t{t_c}"), op);
        }
    }
    let scenarios = grid
        .scenarios()
        .map_err(|err| CliError::usage(err.to_string()))?;

    let report = BatchRunner::new()
        .workers(parsed.usize_or("workers", 0)?)
        .soa_routing(routing_by_name(parsed.value("routing").unwrap_or("auto"))?)
        .run(scenarios);

    // Expansion order is excitation -> material -> operating point, so the
    // (amplitude, material) labels of each entry follow from its index.
    let per_material = temperatures.len() * frequencies.len();
    let per_amplitude = materials.len() * per_material;
    let mut entries = Vec::with_capacity(report.entries.len());
    let mut fit_points: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); materials.len()];
    let mut failed = 0usize;
    for (index, entry) in report.entries.iter().enumerate() {
        let amplitude = amplitudes[index / per_amplitude];
        let material_index = (index % per_amplitude) / per_material;
        let mut doc = JsonValue::object().with("scenario", entry.scenario.name.as_str());
        match &entry.outcome {
            Ok(outcome) => {
                doc.push("status", "ok");
                doc.push("material", materials[material_index]);
                doc.push("peak_h_a_per_m", amplitude);
                let op = outcome.operating_point.unwrap_or_default();
                if let Some(frequency) = op.frequency_hz {
                    doc.push("frequency_hz", frequency);
                }
                if let Some(t_c) = op.temperature_c {
                    doc.push("temperature_c", t_c);
                }
                if let Some(metrics) = &outcome.metrics {
                    doc.push("b_pk_t", metrics.b_max.as_tesla());
                }
                if let Some(loss) = &outcome.loss {
                    doc.push("loss", loss_value(loss));
                    if let (Some(metrics), Some(frequency)) = (&outcome.metrics, op.frequency_hz) {
                        fit_points[material_index].push((
                            frequency,
                            metrics.b_max.as_tesla(),
                            loss.total_w,
                        ));
                    }
                }
            }
            Err(err) => {
                failed += 1;
                doc.push("status", "error");
                doc.push("error", err.to_string());
            }
        }
        entries.push(doc);
    }

    let fits: Vec<JsonValue> = materials
        .iter()
        .zip(&fit_points)
        .map(|(material, points)| {
            let mut doc = JsonValue::object()
                .with("material", *material)
                .with("points", points.len());
            match fit_steinmetz_full(points) {
                Ok((k, alpha, beta)) => {
                    doc.push("k", k);
                    doc.push("alpha", alpha);
                    doc.push("beta", beta);
                }
                Err(err) => {
                    doc.push("error", err.to_string());
                }
            }
            doc
        })
        .collect();

    let total = report.entries.len();
    let doc = report_envelope("loss_map")
        .with("points", total)
        .with("succeeded", total - failed)
        .with("failed", failed)
        .with("entries", JsonValue::Array(entries))
        .with("fits", JsonValue::Array(fits));
    write_output(parsed.value("out"), &doc.to_pretty_string())?;
    if failed > 0 {
        return Err(CliError::failure(format!(
            "{failed} of {total} loss-map points did not succeed"
        )));
    }
    Ok(())
}
