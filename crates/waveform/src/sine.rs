//! Sinusoidal and damped-sinusoidal waveforms.

use crate::error::WaveformError;
use crate::generator::Waveform;

/// `x(t) = offset + A·sin(2π·f·t + φ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sine {
    amplitude: f64,
    frequency: f64,
    phase_rad: f64,
    offset: f64,
}

impl Sine {
    /// Creates a sine waveform from amplitude and frequency (Hz).
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] when the amplitude is not
    /// finite and non-negative or the frequency is not finite and positive.
    pub fn new(amplitude: f64, frequency: f64) -> Result<Self, WaveformError> {
        if !amplitude.is_finite() || amplitude < 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "amplitude",
                value: amplitude,
                requirement: "finite and >= 0",
            });
        }
        if !frequency.is_finite() || frequency <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "frequency",
                value: frequency,
                requirement: "finite and > 0",
            });
        }
        Ok(Self {
            amplitude,
            frequency,
            phase_rad: 0.0,
            offset: 0.0,
        })
    }

    /// Adds a phase in radians.
    pub fn with_phase(mut self, phase_rad: f64) -> Self {
        self.phase_rad = phase_rad;
        self
    }

    /// Adds a DC offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Peak amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }
}

impl Waveform for Sine {
    fn value(&self, t: f64) -> f64 {
        self.offset
            + self.amplitude
                * (2.0 * std::f64::consts::PI * self.frequency * t + self.phase_rad).sin()
    }

    fn period(&self) -> Option<f64> {
        Some(1.0 / self.frequency)
    }

    fn derivative(&self, t: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * self.frequency;
        self.amplitude * omega * (omega * t + self.phase_rad).cos()
    }
}

/// Exponentially decaying sine: `x(t) = A·e^(−t/τ)·sin(2π·f·t)`.
///
/// Useful as a demagnetisation ("degauss") excitation: sweeping the field
/// with a decaying amplitude walks the magnetisation back towards the
/// demagnetised state through a sequence of shrinking minor loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampedSine {
    amplitude: f64,
    frequency: f64,
    tau: f64,
}

impl DampedSine {
    /// Creates a damped sine from initial amplitude, frequency (Hz) and
    /// decay time constant τ (s).
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidParameter`] for non-finite or
    /// non-positive frequency / τ, or negative amplitude.
    pub fn new(amplitude: f64, frequency: f64, tau: f64) -> Result<Self, WaveformError> {
        if !amplitude.is_finite() || amplitude < 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "amplitude",
                value: amplitude,
                requirement: "finite and >= 0",
            });
        }
        if !frequency.is_finite() || frequency <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "frequency",
                value: frequency,
                requirement: "finite and > 0",
            });
        }
        if !tau.is_finite() || tau <= 0.0 {
            return Err(WaveformError::InvalidParameter {
                name: "tau",
                value: tau,
                requirement: "finite and > 0",
            });
        }
        Ok(Self {
            amplitude,
            frequency,
            tau,
        })
    }
}

impl Waveform for DampedSine {
    fn value(&self, t: f64) -> f64 {
        self.amplitude
            * (-t / self.tau).exp()
            * (2.0 * std::f64::consts::PI * self.frequency * t).sin()
    }

    fn derivative(&self, t: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * self.frequency;
        let envelope = self.amplitude * (-t / self.tau).exp();
        envelope * (omega * (omega * t).cos() - (omega * t).sin() / self.tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_rejects_bad_parameters() {
        assert!(Sine::new(-1.0, 50.0).is_err());
        assert!(Sine::new(1.0, 0.0).is_err());
        assert!(Sine::new(1.0, 50.0).is_ok());
    }

    #[test]
    fn sine_values_and_period() {
        let w = Sine::new(2.0, 50.0).unwrap();
        assert!((w.value(0.0)).abs() < 1e-12);
        assert!((w.value(0.005) - 2.0).abs() < 1e-9); // quarter period
        assert_eq!(w.period(), Some(0.02));
    }

    #[test]
    fn sine_phase_and_offset() {
        let w = Sine::new(1.0, 1.0)
            .unwrap()
            .with_phase(std::f64::consts::FRAC_PI_2)
            .with_offset(10.0);
        assert!((w.value(0.0) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn sine_derivative_analytic() {
        let w = Sine::new(3.0, 10.0).unwrap();
        let omega = 2.0 * std::f64::consts::PI * 10.0;
        assert!((w.derivative(0.0) - 3.0 * omega).abs() < 1e-9);
    }

    #[test]
    fn damped_sine_decays() {
        let w = DampedSine::new(100.0, 50.0, 0.05).unwrap();
        let early: f64 = (0..20)
            .map(|i| w.value(i as f64 * 1e-3).abs())
            .fold(0.0, f64::max);
        let late: f64 = (0..20)
            .map(|i| w.value(0.3 + i as f64 * 1e-3).abs())
            .fold(0.0, f64::max);
        assert!(late < early * 0.01);
    }

    #[test]
    fn damped_sine_rejects_bad_tau() {
        assert!(DampedSine::new(1.0, 50.0, 0.0).is_err());
        assert!(DampedSine::new(1.0, 50.0, f64::INFINITY).is_err());
    }

    #[test]
    fn damped_sine_derivative_matches_fd() {
        let w = DampedSine::new(10.0, 5.0, 0.1).unwrap();
        for &t in &[0.01, 0.05, 0.2] {
            let dt = 1e-8;
            let fd = (w.value(t + dt) - w.value(t - dt)) / (2.0 * dt);
            assert!((w.derivative(t) - fd).abs() < 1e-3);
        }
    }
}
