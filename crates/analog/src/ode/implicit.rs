//! Implicit fixed-step integrators: backward Euler and the trapezoidal rule.
//!
//! Each time step solves the nonlinear stage equation with damped Newton
//! iteration using a finite-difference Jacobian, which is how a SPICE-class
//! transient engine advances stiff circuit equations.  Their per-step
//! Newton statistics are what the turning-point stability experiment (E4)
//! compares against the timeless model.

use crate::error::SolverError;
use crate::newton::{self, FiniteDifferenceJacobian, NewtonOptions};
use crate::ode::{validate_fixed_step, FixedStepIntegrator, OdeSystem, Trajectory};

/// Backward (implicit) Euler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackwardEuler {
    /// Newton options used for the per-step solve.
    pub newton: NewtonOptions,
}

impl Default for BackwardEuler {
    fn default() -> Self {
        Self {
            newton: NewtonOptions {
                max_iterations: 50,
                residual_tolerance: 1e-10,
                step_tolerance: 1e-13,
                damping: 1.0,
            },
        }
    }
}

/// Trapezoidal rule (the default integration method of Berkeley SPICE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trapezoidal {
    /// Newton options used for the per-step solve.
    pub newton: NewtonOptions,
}

impl Default for Trapezoidal {
    fn default() -> Self {
        Self {
            newton: BackwardEuler::default().newton,
        }
    }
}

/// Statistics of an implicit integration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImplicitStats {
    /// Total Newton iterations across all steps.
    pub newton_iterations: usize,
    /// Number of steps whose Newton solve failed to converge (the step is
    /// then accepted from the last iterate — mirroring a simulator that
    /// limps on after `GMIN` stepping — but counted here).
    pub non_converged_steps: usize,
}

fn integrate_implicit<S: OdeSystem>(
    system: &S,
    y0: &[f64],
    t0: f64,
    t_end: f64,
    dt: f64,
    newton_options: &NewtonOptions,
    theta: f64,
) -> Result<(Trajectory, ImplicitStats), SolverError> {
    let steps = validate_fixed_step(system.dim(), y0, t0, t_end, dt)?;
    let n = system.dim();
    let mut times = Vec::with_capacity(steps + 1);
    let mut states = Vec::with_capacity(steps + 1);
    let mut evals = 0usize;
    let mut stats = ImplicitStats::default();

    let mut y = y0.to_vec();
    times.push(t0);
    states.push(y.clone());
    let mut t = t0;

    let mut f_prev = vec![0.0; n];
    for _ in 0..steps {
        let h = dt.min(t_end - t);
        let t_next = t + h;
        system.rhs(t, &y, &mut f_prev);
        evals += 1;

        // Residual for the theta method:
        //   y_next - y - h*( (1-theta)*f(t, y) + theta*f(t_next, y_next) ) = 0
        // theta = 1   -> backward Euler
        // theta = 1/2 -> trapezoidal
        let y_prev = y.clone();
        let f_prev_snapshot = f_prev.clone();
        let residual_evals = std::cell::Cell::new(0usize);
        let residual = |y_next: &[f64], r: &mut [f64]| {
            let mut f_next = vec![0.0; n];
            system.rhs(t_next, y_next, &mut f_next);
            residual_evals.set(residual_evals.get() + 1);
            for i in 0..n {
                r[i] = y_next[i]
                    - y_prev[i]
                    - h * ((1.0 - theta) * f_prev_snapshot[i] + theta * f_next[i]);
            }
        };
        let fd_system = FiniteDifferenceJacobian::new(n, residual, 1e-7);

        // Predictor: explicit Euler step as the Newton starting point.
        let mut y_guess = y.clone();
        for i in 0..n {
            y_guess[i] += h * f_prev[i];
        }

        match newton::solve(&fd_system, &y_guess, newton_options) {
            Ok(solution) => {
                stats.newton_iterations += solution.iterations;
                y = solution.x;
            }
            Err(SolverError::NonConvergence { iterations, .. }) => {
                stats.newton_iterations += iterations;
                stats.non_converged_steps += 1;
                // Accept the predictor to keep going (counted as a failure).
                y = y_guess;
            }
            Err(other) => return Err(other),
        }
        evals += residual_evals.get();

        t = t_next;
        times.push(t);
        states.push(y.clone());
    }
    Ok((Trajectory::new(times, states, evals), stats))
}

impl BackwardEuler {
    /// Integrates and additionally returns the Newton statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FixedStepIntegrator::integrate`].
    pub fn integrate_with_stats<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<(Trajectory, ImplicitStats), SolverError> {
        integrate_implicit(system, y0, t0, t_end, dt, &self.newton, 1.0)
    }
}

impl Trapezoidal {
    /// Integrates and additionally returns the Newton statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FixedStepIntegrator::integrate`].
    pub fn integrate_with_stats<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<(Trajectory, ImplicitStats), SolverError> {
        integrate_implicit(system, y0, t0, t_end, dt, &self.newton, 0.5)
    }
}

impl FixedStepIntegrator for BackwardEuler {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<Trajectory, SolverError> {
        self.integrate_with_stats(system, y0, t0, t_end, dt)
            .map(|(trajectory, _)| trajectory)
    }
}

impl FixedStepIntegrator for Trapezoidal {
    fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        y0: &[f64],
        t0: f64,
        t_end: f64,
        dt: f64,
    ) -> Result<Trajectory, SolverError> {
        self.integrate_with_stats(system, y0, t0, t_end, dt)
            .map(|(trajectory, _)| trajectory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stiff linear decay: dy/dt = -1000(y - cos(t)), classic stiff test.
    struct StiffDecay;
    impl OdeSystem for StiffDecay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -1000.0 * (y[0] - t.cos());
        }
    }

    /// dy/dt = -y
    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -y[0];
        }
    }

    #[test]
    fn backward_euler_stable_on_stiff_problem() {
        // Step far beyond the explicit stability limit (h*lambda = 10).
        let result = BackwardEuler::default()
            .integrate(&StiffDecay, &[0.0], 0.0, 1.0, 0.01)
            .unwrap();
        let y_end = result.last_state()[0];
        // Solution tracks cos(t) closely once the fast transient dies.
        assert!((y_end - 1.0_f64.cos()).abs() < 0.05, "y_end = {y_end}");
        // Forward Euler at the same step size blows up; verify the contrast.
        let fe = crate::ode::explicit::ForwardEuler
            .integrate(&StiffDecay, &[0.0], 0.0, 1.0, 0.01)
            .unwrap();
        assert!(fe.last_state()[0].abs() > 1e3 || fe.last_state()[0].is_nan());
    }

    #[test]
    fn trapezoidal_second_order_accuracy() {
        let exact = (-1.0_f64).exp();
        let coarse = Trapezoidal::default()
            .integrate(&Decay, &[1.0], 0.0, 1.0, 0.1)
            .unwrap()
            .last_state()[0];
        let fine = Trapezoidal::default()
            .integrate(&Decay, &[1.0], 0.0, 1.0, 0.01)
            .unwrap()
            .last_state()[0];
        assert!((fine - exact).abs() < (coarse - exact).abs() / 30.0);
    }

    #[test]
    fn stats_report_newton_work() {
        let (_, stats) = BackwardEuler::default()
            .integrate_with_stats(&Decay, &[1.0], 0.0, 1.0, 0.1)
            .unwrap();
        assert!(stats.newton_iterations >= 10);
        assert_eq!(stats.non_converged_steps, 0);
    }

    #[test]
    fn non_convergence_is_counted_not_fatal() {
        let integrator = BackwardEuler {
            newton: NewtonOptions {
                max_iterations: 1,
                residual_tolerance: 1e-16,
                step_tolerance: 1e-18,
                damping: 1.0,
            },
        };
        let (trajectory, stats) = integrator
            .integrate_with_stats(&StiffDecay, &[0.0], 0.0, 0.05, 0.01)
            .unwrap();
        assert_eq!(trajectory.len(), 6);
        assert!(stats.non_converged_steps > 0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BackwardEuler::default()
            .integrate(&Decay, &[1.0], 0.0, 1.0, 0.0)
            .is_err());
        assert!(Trapezoidal::default()
            .integrate(&Decay, &[1.0, 2.0], 0.0, 1.0, 0.1)
            .is_err());
    }
}
