//! Experiment E7: loop metrics implied by the paper's parameter set
//! (section 2), for the paper material and the other presets, plus the cost
//! of the analysis itself.

use criterion::{black_box, Criterion};
use hdl_models::scenario::{BackendKind, Excitation, Scenario};
use ja_bench::{print_metrics_header, print_metrics_row};
use ja_hysteresis::config::JaConfig;
use magnetics::loop_analysis::{self, loop_metrics};
use magnetics::material::JaParameters;

fn sweep(params: JaParameters, peak: f64) -> magnetics::bh::BhCurve {
    Scenario::new(
        "loop-metrics",
        params,
        JaConfig::default(),
        BackendKind::DirectTimeless,
        Excitation::major_loop(peak, peak / 1000.0, 2).expect("excitation"),
    )
    .run()
    .expect("sweep")
    .curve
}

fn print_experiment() {
    println!("== E7: loop metrics of the paper's parameter set (k=4000, c=0.1, Msat=1.6M, a=2000, a2=3500, alpha=0.003) ==\n");
    print_metrics_header();
    let cases = [
        (
            "DATE-2006 paper material",
            JaParameters::date2006(),
            10_000.0,
        ),
        (
            "Jiles-Atherton 1984 iron",
            JaParameters::jiles_atherton_1984(),
            5_000.0,
        ),
        ("soft ferrite preset", JaParameters::soft_ferrite(), 200.0),
        ("hard steel preset", JaParameters::hard_steel(), 50_000.0),
    ];
    for (label, params, peak) in cases {
        let curve = sweep(params, peak);
        print_metrics_row(label, &loop_metrics(&curve).unwrap());
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let curve = sweep(JaParameters::date2006(), 10_000.0);
    let mut group = c.benchmark_group("loop_metrics");
    group.sample_size(20);
    group.bench_function("full_metrics_extraction", |b| {
        b.iter(|| black_box(loop_metrics(&curve).unwrap()))
    });
    group.bench_function("coercivity_only", |b| {
        b.iter(|| black_box(loop_analysis::coercivity(&curve).unwrap()))
    });
    group.bench_function("loop_area_only", |b| {
        b.iter(|| black_box(loop_analysis::loop_area(&curve)))
    });
    group.finish();
}

fn main() {
    print_experiment();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
