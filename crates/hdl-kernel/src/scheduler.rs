//! Timed event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::process::ProcessId;
use crate::signal::SignalId;
use crate::time::SimTime;
use crate::value::Value;

/// A timed event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Write a value to a signal at the scheduled time.
    SignalWrite {
        /// Target signal.
        signal: SignalId,
        /// Value to write.
        value: Value,
    },
    /// Wake a process at the scheduled time (timed trigger).
    Wakeup {
        /// Process to trigger.
        process: ProcessId,
    },
}

/// One queued event with its ordering key.
///
/// Equality covers the full `(time, sequence, event)` tuple; ordering uses
/// only `(time, sequence)`.  The two stay consistent because `sequence` is
/// unique per queue — `cmp` can only return `Equal` for one and the same
/// entry — while full-tuple equality keeps `assert_eq!`-style comparisons
/// honest (two entries with equal keys but different payloads must not
/// compare equal).
#[derive(Debug, PartialEq)]
struct QueueEntry {
    time: SimTime,
    sequence: u64,
    event: Event,
}

// `Event` carries `Value::Real(f64)`, so `Eq` cannot be derived; scheduled
// values are finite simulation quantities (a NaN write is an upstream bug),
// which makes the reflexivity promise sound in practice.
impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.sequence).cmp(&(other.time, other.sequence))
    }
}

/// A time-ordered event queue with stable ordering for same-time events
/// (insertion order is preserved, as in SystemC's evaluation phase).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
    next_sequence: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at an absolute time.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let entry = QueueEntry {
            time,
            sequence: self.next_sequence,
            event,
        };
        self.next_sequence += 1;
        self.heap.push(Reverse(entry));
    }

    /// Time of the earliest queued event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Drains every event scheduled exactly at `time` into `out`, in
    /// insertion order, and returns how many were appended.
    ///
    /// The caller owns (and typically reuses) the scratch buffer, so a
    /// simulation's hot loop performs no per-time-point allocation once the
    /// buffer has grown to the high-water mark.
    pub fn pop_into(&mut self, time: SimTime, out: &mut Vec<Event>) -> usize {
        let mut appended = 0;
        while let Some(Reverse(entry)) = self.heap.peek() {
            if entry.time != time {
                break;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
            out.push(entry.event);
            appended += 1;
        }
        appended
    }

    /// Removes every queued event and resets the sequence counter, so a
    /// reused queue orders same-time events exactly like a fresh one.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_sequence = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_at(q: &mut EventQueue, time: SimTime) -> Vec<Event> {
        let mut out = Vec::new();
        q.pop_into(time, &mut out);
        out
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        let p = ProcessId(0);
        q.push(SimTime::from_nanos(20), Event::Wakeup { process: p });
        q.push(SimTime::from_nanos(10), Event::Wakeup { process: p });
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(10)));
        let first = drain_at(&mut q, SimTime::from_nanos(10));
        assert_eq!(first.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    fn same_time_events_preserve_insertion_order() {
        let mut q = EventQueue::new();
        let s = SignalId(3);
        q.push(
            SimTime::from_nanos(5),
            Event::SignalWrite {
                signal: s,
                value: Value::Real(1.0),
            },
        );
        q.push(
            SimTime::from_nanos(5),
            Event::SignalWrite {
                signal: s,
                value: Value::Real(2.0),
            },
        );
        let events = drain_at(&mut q, SimTime::from_nanos(5));
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::SignalWrite {
                signal: s,
                value: Value::Real(1.0)
            }
        );
        assert_eq!(
            events[1],
            Event::SignalWrite {
                signal: s,
                value: Value::Real(2.0)
            }
        );
        assert!(q.is_empty());
    }

    #[test]
    fn pop_into_appends_without_clearing() {
        let mut q = EventQueue::new();
        let p = ProcessId(7);
        q.push(SimTime::from_nanos(1), Event::Wakeup { process: p });
        q.push(SimTime::from_nanos(2), Event::Wakeup { process: p });
        let mut out = Vec::new();
        assert_eq!(q.pop_into(SimTime::from_nanos(1), &mut out), 1);
        assert_eq!(q.pop_into(SimTime::from_nanos(2), &mut out), 1);
        assert_eq!(out.len(), 2, "pop_into appends; the caller clears");
    }

    #[test]
    fn pop_into_at_wrong_time_returns_nothing() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_nanos(5),
            Event::Wakeup {
                process: ProcessId(1),
            },
        );
        let mut out = Vec::new();
        assert_eq!(q.pop_into(SimTime::from_nanos(4), &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_has_no_next_time() {
        let q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_the_sequence_counter() {
        let mut q = EventQueue::new();
        let s = SignalId(0);
        q.push(
            SimTime::from_nanos(1),
            Event::SignalWrite {
                signal: s,
                value: Value::Real(1.0),
            },
        );
        q.clear();
        assert!(q.is_empty());
        // After clear, same-time insertion order starts from sequence 0
        // again — a reused queue is indistinguishable from a fresh one.
        q.push(
            SimTime::from_nanos(2),
            Event::SignalWrite {
                signal: s,
                value: Value::Real(2.0),
            },
        );
        q.push(
            SimTime::from_nanos(2),
            Event::SignalWrite {
                signal: s,
                value: Value::Real(3.0),
            },
        );
        let events = drain_at(&mut q, SimTime::from_nanos(2));
        assert_eq!(
            events,
            vec![
                Event::SignalWrite {
                    signal: s,
                    value: Value::Real(2.0)
                },
                Event::SignalWrite {
                    signal: s,
                    value: Value::Real(3.0)
                },
            ]
        );
    }

    #[test]
    fn entry_equality_covers_the_event_payload() {
        // Regression test: the old hand-written `PartialEq` compared only
        // `(time, sequence)`, so two entries with equal keys but different
        // events compared equal.
        let a = QueueEntry {
            time: SimTime::from_nanos(5),
            sequence: 0,
            event: Event::Wakeup {
                process: ProcessId(1),
            },
        };
        let b = QueueEntry {
            time: SimTime::from_nanos(5),
            sequence: 0,
            event: Event::Wakeup {
                process: ProcessId(2),
            },
        };
        assert_ne!(a, b, "equal keys but different payloads must differ");
        assert_eq!(
            a.cmp(&b),
            std::cmp::Ordering::Equal,
            "ordering still uses only (time, sequence)"
        );
        let c = QueueEntry {
            time: SimTime::from_nanos(5),
            sequence: 0,
            event: Event::Wakeup {
                process: ProcessId(1),
            },
        };
        assert_eq!(a, c);
    }
}
