//! The user-facing Jiles–Atherton model with timeless slope integration.

use magnetics::anhysteretic::AnhystereticKind;
use magnetics::constants::MU0;
use magnetics::material::JaParameters;
use magnetics::units::{FieldStrength, FluxDensity, Magnetisation};

use crate::config::JaConfig;
use crate::error::JaError;
use crate::state::JaState;
use crate::timeless::advance_state;

/// One output sample of the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaSample {
    /// Applied field.
    pub h: FieldStrength,
    /// Flux density `B = µ0·(H + M)`.
    pub b: FluxDensity,
    /// Total magnetisation.
    pub m: Magnetisation,
    /// Normalised anhysteretic magnetisation at the sample.
    pub m_an: f64,
}

/// Cumulative statistics of a model instance — the cost metrics reported by
/// the runtime experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JaStatistics {
    /// Field samples applied.
    pub samples: u64,
    /// Slope-integration updates actually performed (field moved ≥ ΔH_max).
    pub updates: u64,
    /// Total slope evaluations.
    pub slope_evaluations: u64,
    /// Evaluations whose raw slope was negative.
    pub negative_slope_events: u64,
    /// Updates rejected by the opposing-sign guard.
    pub rejected_updates: u64,
}

/// The Jiles–Atherton hysteresis model with timeless discretisation of the
/// magnetisation slope.
///
/// Drive it by feeding successive applied-field values to
/// [`apply_field`](JilesAtherton::apply_field); the model decides internally
/// when the accumulated field change warrants a slope-integration update
/// (the paper's `monitorH` / `Integral` processes collapsed into a direct
/// call).
#[derive(Debug, Clone)]
pub struct JilesAtherton {
    params: JaParameters,
    anhysteretic: AnhystereticKind,
    config: JaConfig,
    state: JaState,
    stats: JaStatistics,
}

impl JilesAtherton {
    /// Creates a model with the default configuration (the paper's).
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Material`] for an invalid parameter set.
    pub fn new(params: JaParameters) -> Result<Self, JaError> {
        Self::with_config(params, JaConfig::default())
    }

    /// Creates a model with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::Material`] for an invalid parameter set or
    /// [`JaError::InvalidConfig`] for an invalid configuration.
    pub fn with_config(params: JaParameters, config: JaConfig) -> Result<Self, JaError> {
        params.validate()?;
        config.validate()?;
        let anhysteretic = config.anhysteretic.build(&params);
        Ok(Self {
            params,
            anhysteretic,
            config,
            state: JaState::demagnetised(),
            stats: JaStatistics::default(),
        })
    }

    /// The material parameters.
    pub fn params(&self) -> &JaParameters {
        &self.params
    }

    /// The model configuration.
    pub fn config(&self) -> &JaConfig {
        &self.config
    }

    /// The current magnetisation state.
    pub fn state(&self) -> &JaState {
        &self.state
    }

    /// The cumulative statistics.
    pub fn statistics(&self) -> JaStatistics {
        self.stats
    }

    /// Resets the core to the demagnetised state and clears the statistics.
    pub fn reset(&mut self) {
        self.state = JaState::demagnetised();
        self.stats = JaStatistics::default();
    }

    /// Overwrites the magnetisation state (e.g. to start from remanence).
    pub fn set_state(&mut self, state: JaState) {
        self.state = state;
    }

    /// Current flux density.
    pub fn flux_density(&self) -> FluxDensity {
        self.state.flux_density(&self.params)
    }

    /// Current total magnetisation.
    pub fn magnetisation(&self) -> Magnetisation {
        self.state.magnetisation(&self.params)
    }

    /// Applies a new value of the external field and returns the resulting
    /// sample.
    ///
    /// This is the whole "timeless" loop of the paper: if the field has
    /// moved by at least `ΔH_max` since the last update, the irreversible
    /// magnetisation is advanced by integrating the slope across the
    /// increment; the reversible part and the flux density are then
    /// recomputed algebraically.
    ///
    /// # Errors
    ///
    /// Returns [`JaError::NonFiniteField`] for a NaN/infinite field and
    /// [`JaError::StateDiverged`] if the state stops being finite (possible
    /// only with the guards disabled).
    pub fn apply_field(&mut self, h: f64) -> Result<JaSample, JaError> {
        advance_state(
            &self.params,
            &self.anhysteretic,
            &self.config,
            &mut self.state,
            &mut self.stats,
            h,
        )?;
        Ok(self.sample())
    }

    /// The sample corresponding to the current state without applying a new
    /// field.
    pub fn sample(&self) -> JaSample {
        let m_sat = self.params.m_sat.value();
        JaSample {
            h: FieldStrength::new(self.state.h),
            b: FluxDensity::new(MU0 * (self.state.h + self.state.m_total * m_sat)),
            m: Magnetisation::new(self.state.m_total * m_sat),
            m_an: self.state.m_an,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Formulation, SlopeIntegration};
    use crate::params::AnhystereticChoice;
    use proptest::prelude::*;

    fn paper_model() -> JilesAtherton {
        JilesAtherton::new(JaParameters::date2006()).expect("valid parameters")
    }

    /// Drives the model along a linear ramp in small steps.
    fn ramp(model: &mut JilesAtherton, from: f64, to: f64, step: f64) -> Vec<JaSample> {
        let mut samples = Vec::new();
        let n = ((to - from).abs() / step).ceil() as usize;
        let dir = (to - from).signum();
        for i in 0..=n {
            let h = from + dir * step * i as f64;
            let h = if dir > 0.0 { h.min(to) } else { h.max(to) };
            samples.push(model.apply_field(h).expect("finite field"));
        }
        samples
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(JilesAtherton::new(JaParameters::date2006()).is_ok());
        let mut bad = JaParameters::date2006();
        bad.k = -1.0;
        assert!(JilesAtherton::new(bad).is_err());
        let bad_config = JaConfig::default().with_dh_max(0.0);
        assert!(JilesAtherton::with_config(JaParameters::date2006(), bad_config).is_err());
    }

    #[test]
    fn rejects_non_finite_field() {
        let mut model = paper_model();
        assert!(model.apply_field(f64::NAN).is_err());
        assert!(model.apply_field(f64::INFINITY).is_err());
    }

    #[test]
    fn initial_magnetisation_curve_rises_and_saturates() {
        let mut model = paper_model();
        let samples = ramp(&mut model, 0.0, 10_000.0, 10.0);
        let b_end = samples.last().unwrap().b.as_tesla();
        assert!(b_end > 1.2, "B at 10 kA/m = {b_end} T");
        assert!(b_end < 2.3);
        // Magnetisation bounded by saturation.
        assert!(model.state().m_total <= 1.0 + 1e-6);
        // B must be monotonically non-decreasing on the initial curve.
        for w in samples.windows(2) {
            assert!(w[1].b.as_tesla() >= w[0].b.as_tesla() - 1e-12);
        }
        assert!(model.statistics().updates > 500);
    }

    #[test]
    fn major_loop_shows_hysteresis() {
        let mut model = paper_model();
        ramp(&mut model, 0.0, 10_000.0, 10.0);
        // Descend to zero field: remanence should be positive.
        ramp(&mut model, 10_000.0, 0.0, 10.0);
        let b_remanent = model.flux_density().as_tesla();
        assert!(b_remanent > 0.1, "B_r = {b_remanent} T");
        // Continue to negative saturation.
        let samples = ramp(&mut model, 0.0, -10_000.0, 10.0);
        let b_negative = samples.last().unwrap().b.as_tesla();
        assert!(b_negative < -1.2);
    }

    #[test]
    fn small_field_jitter_below_threshold_does_not_update() {
        let mut model = paper_model();
        model.apply_field(0.0).unwrap();
        for i in 0..100 {
            model.apply_field((i % 2) as f64 * 1.0).unwrap(); // 1 A/m << dh_max
        }
        assert_eq!(model.statistics().updates, 0);
        assert_eq!(model.statistics().samples, 101);
    }

    #[test]
    fn reset_restores_demagnetised_state() {
        let mut model = paper_model();
        ramp(&mut model, 0.0, 5_000.0, 10.0);
        assert!(model.magnetisation().value() > 0.0);
        model.reset();
        assert_eq!(model.state().m_total, 0.0);
        assert_eq!(model.statistics().samples, 0);
        assert_eq!(model.flux_density().as_tesla(), 0.0);
    }

    #[test]
    fn set_state_starts_from_remanence() {
        let mut model = paper_model();
        model.set_state(crate::state::JaState::premagnetised(0.6));
        let sample = model.apply_field(0.0).unwrap();
        assert!(sample.b.as_tesla() > 0.5);
    }

    #[test]
    fn guards_prevent_negative_slope_artefacts() {
        let mut model = paper_model();
        ramp(&mut model, 0.0, 10_000.0, 10.0);
        ramp(&mut model, 10_000.0, -10_000.0, 10.0);
        ramp(&mut model, -10_000.0, 10_000.0, 10.0);
        // Any clamped events are recorded but the produced curve never shows
        // a negative dB/dH sample (checked indirectly via monotonic branches
        // in the sweep tests; here check the statistics are consistent).
        let stats = model.statistics();
        assert!(stats.updates > 0);
        assert!(stats.slope_evaluations >= stats.updates);
    }

    #[test]
    fn classic_formulation_also_produces_hysteresis() {
        let config = JaConfig::default()
            .with_formulation(Formulation::Classic)
            .with_anhysteretic(AnhystereticChoice::Langevin);
        let mut model =
            JilesAtherton::with_config(JaParameters::jiles_atherton_1984(), config).expect("valid");
        ramp(&mut model, 0.0, 5_000.0, 5.0);
        ramp(&mut model, 5_000.0, 0.0, 5.0);
        assert!(model.flux_density().as_tesla() > 0.05);
    }

    #[test]
    fn higher_order_integration_changes_statistics_not_shape() {
        let run = |integration: SlopeIntegration| {
            let config = JaConfig::default().with_integration(integration);
            let mut model =
                JilesAtherton::with_config(JaParameters::date2006(), config).expect("valid");
            ramp(&mut model, 0.0, 10_000.0, 10.0);
            (model.flux_density().as_tesla(), model.statistics())
        };
        let (b_euler, s_euler) = run(SlopeIntegration::ForwardEuler);
        let (b_rk4, s_rk4) = run(SlopeIntegration::RungeKutta4);
        assert!(s_rk4.slope_evaluations > s_euler.slope_evaluations);
        assert!(
            (b_euler - b_rk4).abs() < 0.2,
            "euler {b_euler} vs rk4 {b_rk4}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_magnetisation_stays_bounded(
            peak in 1000.0_f64..40_000.0,
            step in 1.0_f64..100.0,
        ) {
            let mut model = paper_model();
            // One full cycle.
            ramp(&mut model, 0.0, peak, step);
            ramp(&mut model, peak, -peak, step);
            ramp(&mut model, -peak, peak, step);
            prop_assert!(model.state().m_total.abs() <= 1.0 + 1e-6);
            prop_assert!(model.state().is_finite());
        }

        #[test]
        fn prop_flux_density_sign_follows_saturating_field(peak in 8_000.0_f64..30_000.0) {
            let mut model = paper_model();
            ramp(&mut model, 0.0, peak, 10.0);
            prop_assert!(model.flux_density().as_tesla() > 0.5);
            ramp(&mut model, peak, -peak, 10.0);
            prop_assert!(model.flux_density().as_tesla() < -0.5);
        }
    }
}
